// Package analysis is the engine's invariant lint suite (DESIGN.md §13):
// custom static-analysis passes that mechanically enforce the concurrency
// and durability contracts the compiler cannot see — published index state
// is immutable, query paths pin one snapshot, durability errors are never
// discarded, pooled scratch never escapes, and long scans poll cancellation.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic) but is self-contained on the standard library: packages
// are loaded through `go list -json -deps -export` and typechecked from
// source with dependencies imported from compiler export data, so the suite
// runs offline, with no module requirements beyond the toolchain itself.
//
// Suppression convention: a diagnostic is silenced by
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a directive without one is itself reported (rule
// "lintignore") — so every accepted violation documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one invariant check. Run reports findings through the Pass;
// the driver owns suppression filtering and output.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant the pass guards.
	Doc string
	// Packages restricts the analyzer to packages whose import path equals
	// an entry or ends in "/"+entry. Nil means every package. (Fixture
	// packages under testdata match by their trailing path element.)
	Packages []string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// applies reports whether the analyzer covers the package.
func (a *Analyzer) applies(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzed package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(token.Pos, string)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// ---- shared AST/type helpers used by the passes ----

// deref peels pointers off t.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedType returns the *types.Named behind t (through pointers and
// aliases), or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = deref(types.Unalias(t))
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamed reports whether t (through pointers) is the named type
// pkgPath.name. Generic instantiations match their origin.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	n = n.Origin()
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeFunc resolves the called function or method of call, or nil (for
// builtins, function-typed variables, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcOwner describes where a *types.Func lives: its package path and, for
// methods, the receiver's named type.
func funcOwner(f *types.Func) (pkgPath, recvName string) {
	if f == nil {
		return "", ""
	}
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			recvName = n.Origin().Obj().Name()
		}
	}
	return pkgPath, recvName
}

// isMethod reports whether f is the method pkgPath.(recv).name.
func isMethod(f *types.Func, pkgPath, recv, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	p, r := funcOwner(f)
	return p == pkgPath && r == recv
}

// isFunc reports whether f is the package-level function pkgPath.name.
func isFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	p, r := funcOwner(f)
	return p == pkgPath && r == ""
}

// funcUnit is one analyzed function body: a declaration or a function
// literal. Passes that reason about resource lifetimes treat each unit
// independently (a closure owns what it acquires); passes that reason about
// captured state (a scratch's cancel channel) walk declarations with their
// nested literals included.
type funcUnit struct {
	decl *ast.FuncDecl // nil for literals
	body *ast.BlockStmt
}

// functionUnits collects every function body in f: declarations and all
// (transitively nested) function literals.
func functionUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				units = append(units, funcUnit{decl: n, body: n.Body})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{body: n.Body})
		}
		return true
	})
	return units
}

// walkUnit traverses the unit's body without descending into nested
// function literals (each literal is its own unit).
func walkUnit(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// rootIdent peels selectors, index expressions, parens, stars and slices
// off e and returns the base identifier, or nil (e.g. when the chain is
// rooted in a call).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a selector/ident chain ("e.snap") for use as a map
// key; non-chain expressions render as "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return ""
	}
}
