package analysis

import (
	"go/ast"
)

// SnapPin enforces the one-snapshot-per-query rule (DESIGN.md §8): a
// function must load an atomic.Pointer-published snapshot exactly once and
// thread the pinned value everywhere. Two loads of the same pointer can
// straddle an epoch publication — the first half of the work runs against
// epoch N, the second against N+1 — which is precisely the shear the
// snapshot indirection exists to prevent (caches stamped with one epoch,
// scans against another).
//
// The pass counts Load() call sites per function body (nested closures
// included — they run within the query's dynamic extent) keyed by the
// loaded chain ("e.snap"): the second and every further site is reported.
// Writer-side code that deliberately re-loads to re-base under the write
// lock documents itself with a //lint:ignore snappin directive.
var SnapPin = &Analyzer{
	Name: "snappin",
	Doc: "a function loads an atomic.Pointer snapshot at most once and " +
		"threads the pinned value; a reload can straddle an epoch publication",
	Run: runSnapPin,
}

func runSnapPin(pass *Pass) {
	for _, f := range pass.Files {
		for _, unit := range functionUnits(f) {
			if unit.decl == nil {
				continue // literals are counted within their declaration
			}
			seen := make(map[string]int)
			ast.Inspect(unit.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Load" {
					return true
				}
				if !isNamed(pass.TypeOf(sel.X), "sync/atomic", "Pointer") {
					return true
				}
				chain := exprString(sel.X)
				if chain == "" {
					chain = "<expr>"
				}
				seen[chain]++
				if seen[chain] > 1 {
					pass.Reportf(call.Pos(),
						"%s.Load() called %d times in one function; pin the snapshot once "+
							"and pass it down — a second load can straddle an epoch publication",
						chain, seen[chain])
				}
				return true
			})
		}
	}
}
