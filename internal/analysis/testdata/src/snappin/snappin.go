// Package snappin is the test fixture for the snappin analyzer: a function
// may load an atomic.Pointer snapshot at most once.
package snappin

import "sync/atomic"

type snapshot struct{ epoch uint64 }

type engine struct {
	snap  atomic.Pointer[snapshot]
	other atomic.Pointer[snapshot]
}

// pinned loads once and threads the value: the correct shape.
func pinned(e *engine) uint64 {
	sn := e.snap.Load()
	if sn == nil {
		return 0
	}
	return sn.epoch + helper(sn)
}

func helper(sn *snapshot) uint64 { return sn.epoch }

// sheared loads twice: the two snapshots can straddle a publication.
func sheared(e *engine) uint64 {
	a := e.snap.Load().epoch
	b := e.snap.Load().epoch // want `e\.snap\.Load\(\) called 2 times in one function`
	return a + b
}

// distinct pointers are independent: one load of each is fine.
func distinct(e *engine) uint64 {
	return e.snap.Load().epoch + e.other.Load().epoch
}

// suppressed documents a deliberate re-read.
func suppressed(e *engine) uint64 {
	a := e.snap.Load().epoch
	//lint:ignore snappin fixture: deliberate re-read under an exclusion lock
	b := e.snap.Load().epoch
	return a + b
}
