// Package poolescape is the test fixture for the poolescape analyzer:
// pooled scratch is released on every path and never stored past return;
// only local histograms are recycled.
package poolescape

import (
	"pathhist/internal/hist"
	"pathhist/internal/snt"
)

type holder struct{ sc *snt.Scratch }

var global *snt.Scratch

// good is the required shape: acquire, defer release.
func good() int {
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc)
	if sc.Canceled() {
		return 0
	}
	return 1
}

// sequenced releases, but not on early-return or panic paths.
func sequenced(cond bool) int {
	sc := snt.AcquireScratch() // want `AcquireScratch without a deferred ReleaseScratch`
	if cond {
		return 0
	}
	snt.ReleaseScratch(sc)
	return 1
}

// leaked never releases at all.
func leaked() bool {
	sc := snt.AcquireScratch() // want `AcquireScratch is never released`
	return sc.Canceled()
}

// stored parks the scratch where it outlives the function.
func stored(h *holder, m map[int]*snt.Scratch) {
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc)
	h.sc = sc   // want `stored in a field`
	m[0] = sc   // want `stored in a map or slice element`
	global = sc // want `stored in package variable global`
	ch := make(chan *snt.Scratch, 1)
	ch <- sc           // want `sent on a channel`
	_ = holder{sc: sc} // want `stored in a composite literal`
}

// returned hands the acquired scratch to the caller.
func returned() *snt.Scratch {
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc)
	return sc // want `returned to the caller`
}

// recycleLocal recycles a provably-unreachable intermediate: fine.
func recycleLocal(xs []int) {
	hg := hist.FromSamples(xs, 30)
	hg.Recycle()
}

type result struct{ H *hist.Histogram }

// recycleShared recycles a histogram still reachable through a result.
func recycleShared(r *result) {
	r.H.Recycle() // want `Recycle on a non-local histogram`
}

// suppressed documents a deliberate store.
func suppressed(h *holder) {
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc)
	//lint:ignore poolescape fixture: demonstrates that a justified suppression is honored
	h.sc = sc
}
