// Package lintignore is the test fixture for the suppression machinery
// itself: a //lint:ignore directive without a reason is malformed — it is
// reported under the rule "lintignore" and registers no suppression, so the
// violation it meant to silence still fires. Checked by
// TestMalformedDirective rather than // want annotations, because the
// directive line cannot also carry an annotation.
package lintignore

import "os"

func malformed(f *os.File) {
	//lint:ignore syncerr
	f.Close()
}
