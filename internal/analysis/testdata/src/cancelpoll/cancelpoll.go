// Package cancelpoll is the test fixture for the cancelpoll analyzer: scan
// loops over frozen columns in Scratch-holding functions must poll
// Scratch.Canceled.
package cancelpoll

import (
	"pathhist/internal/snt"
	"pathhist/internal/temporal"
)

// unbounded sweeps a column without ever checking the deadline.
func unbounded(sc *snt.Scratch, fx *temporal.FrozenIndex) int64 {
	var s int64
	for i := range fx.Ts { // want `scan loop over frozen columns never polls Scratch\.Canceled`
		s += int64(fx.TT[i])
	}
	return s
}

// polled checks the cancel channel at the stride: the required shape.
func polled(sc *snt.Scratch, fx *temporal.FrozenIndex) int64 {
	var s int64
	for i := range fx.Ts {
		if i&8191 == 0 && sc.Canceled() {
			return s
		}
		s += int64(fx.TT[i])
	}
	return s
}

// viaAlias scans through a local alias of a column; still a scan loop.
func viaAlias(sc *snt.Scratch, fx *temporal.FrozenIndex) int64 {
	ts := fx.Ts
	var s int64
	for i := 0; i < len(ts); i++ { // want `scan loop over frozen columns never polls Scratch\.Canceled`
		s += ts[i]
	}
	return s
}

// noScratch is construction/compaction-shaped code: not cancellable, so
// its sweeps are not flagged.
func noScratch(fx *temporal.FrozenIndex) int64 {
	var s int64
	for _, t := range fx.Ts {
		s += t
	}
	return s
}

// suppressed documents a deliberately unpolled loop.
func suppressed(sc *snt.Scratch, fx *temporal.FrozenIndex) int64 {
	var s int64
	//lint:ignore cancelpoll fixture: demonstrates that a justified suppression is honored
	for i := range fx.Ts {
		s += int64(fx.W[i])
	}
	return s
}
