// Package syncerr is the test fixture for the syncerr analyzer: durability
// errors must be checked, propagated, or explicitly latched.
package syncerr

import (
	"os"

	"pathhist/internal/wal"
)

// dropped discards errors on the durability path.
func dropped(f *os.File, w *wal.WAL) {
	f.Sync()            // want `discarded error from \(File\)\.Sync`
	_ = f.Close()       // want `discarded error from \(File\)\.Close`
	f.Truncate(0)       // want `discarded error from \(File\)\.Truncate`
	os.Rename("a", "b") // want `discarded error from Rename`
	w.Close()           // want `discarded error from \(WAL\)\.Close`
	go f.Sync()         // want `discarded error from \(File\)\.Sync`
}

// checked propagates everything; the deferred Close is idiomatic on read
// paths and exempt.
func checked(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // ok: deferred Close is exempt
	var buf [8]byte
	if _, err := f.Read(buf[:]); err != nil {
		return err
	}
	return nil
}

// writeChecked is the fail-closed write shape the engine uses.
func writeChecked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// suppressed is a deliberate best-effort discard with its justification.
func suppressed(f *os.File) {
	//lint:ignore syncerr fixture: error-path cleanup where the primary error wins
	f.Close()
}
