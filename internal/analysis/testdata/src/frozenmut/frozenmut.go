// Package frozenmut is the test fixture for the frozenmut analyzer:
// writes to published temporal.FrozenIndex state are flagged, writes during
// local construction are not.
package frozenmut

import (
	"pathhist/internal/temporal"
)

// build constructs a fresh index; writes through it are construction.
func build(ts []int64, tt []int32) *temporal.FrozenIndex {
	fx := &temporal.FrozenIndex{Ts: ts}
	fx.TT = tt    // ok: locally constructed
	fx.Ts[0] = 0  // ok: locally constructed
	col := fx.Seq // fresh column alias
	_ = append(col, 1)
	return fx
}

// mutate receives a published index; every write is a violation.
func mutate(fx *temporal.FrozenIndex, tt []int32) {
	fx.Ts[0] = 99              // want `write to published frozen FrozenIndex.Ts`
	fx.Seq = nil               // want `write to published frozen FrozenIndex.Seq`
	fx.W[0]++                  // want `write to published frozen FrozenIndex.W`
	copy(fx.TT, tt)            // want `write to published frozen FrozenIndex.TT`
	col := fx.A                // alias of a published column
	col[0] = 1                 // want `write to published frozen column \(via alias col\)`
	fx.TT[1] += int32(len(tt)) // want `write to published frozen FrozenIndex.TT`
}

// read-only access to published state is fine.
func sum(fx *temporal.FrozenIndex) int64 {
	var s int64
	for _, t := range fx.Ts {
		s += t
	}
	return s
}

// suppressed demonstrates the //lint:ignore convention: the write below is
// a violation but carries a justification, so no diagnostic is expected.
func suppressed(fx *temporal.FrozenIndex) {
	//lint:ignore frozenmut fixture: demonstrates that a justified suppression is honored
	fx.Ts[0] = 1
}
