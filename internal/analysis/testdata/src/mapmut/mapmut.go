// Package mapmut is the test fixture for the mapmut analyzer: writes
// through slices returned by snapio.Reader column methods are flagged —
// under a mapped reader they view the read-only snapshot mapping — while
// reads, field assignment of the view, and detach-by-copy are not.
package mapmut

import (
	"pathhist/internal/snapio"
)

type columns struct {
	ts []int64
	w  []uint16
}

// decode assigns views to fields without writing through them: the
// sanctioned decoding shape.
func decode(r *snapio.Reader) columns {
	return columns{
		ts: r.I64s(), // ok: storing the view
		w:  r.U16s(), // ok: storing the view
	}
}

// mutate writes through column views; every write is a violation.
func mutate(r *snapio.Reader, tt []int32) {
	ts := r.I64s()
	ts[0] = 99      // want `write through a snapio.Reader column view \(via ts\)`
	ts[1] += 7      // want `write through a snapio.Reader column view \(via ts\)`
	ts[2]++         // want `write through a snapio.Reader column view \(via ts\)`
	r.U64s()[0] = 1 // want `write through a snapio.Reader column view \(directly off the reader call\)`
	cols := snapio.ReadI32s[int32](r)
	copy(cols, tt)     // want `write through a snapio.Reader column view \(via cols\)`
	copy(cols[1:], tt) // want `write through a snapio.Reader column view \(via cols\)`
	alias := cols      // one-hop alias of a view
	alias[0] = 3       // want `write through a snapio.Reader column view \(via alias\)`
}

// readOnly consumes views without mutation.
func readOnly(r *snapio.Reader) int64 {
	ts := r.I64s()
	var s int64
	for _, t := range ts {
		s += t
	}
	return s
}

// detach copies a view to the heap before mutating: the sanctioned way to
// edit a decoded column.
func detach(r *snapio.Reader) []int64 {
	view := r.I64s()
	col := append(make([]int64, 0, len(view)+1), view...)
	col[0] = 42 // ok: col is a fresh heap slice, not a view
	return col
}

// suppressed demonstrates the //lint:ignore convention: the write below is
// a violation but carries a justification, so no diagnostic is expected.
func suppressed(r *snapio.Reader) {
	ts := r.I64s()
	//lint:ignore mapmut fixture: demonstrates that a justified suppression is honored
	ts[0] = 1
}
