package analysis

import (
	"go/ast"
	"go/types"
)

const snapioPkg = "pathhist/internal/snapio"

// columnReaders are the snapio.Reader methods (plus the generic free
// function) that return a column slice. Under a mapped reader (DESIGN.md
// §15) these are zero-copy views of a PROT_READ file mapping.
var columnReaders = map[string]bool{
	"I32s": true,
	"I64s": true,
	"U16s": true,
	"U32s": true,
	"U64s": true,
}

// MapMut enforces the zero-copy decoding contract of DESIGN.md §15: a slice
// obtained from a snapio.Reader column method (I32s, I64s, U16s, U32s, U64s,
// or the generic snapio.ReadI32s) may be a view over a read-only mmap'd
// snapshot file, so writing through it is at best a hidden detach-to-heap
// bug and at worst a SIGSEGV against a PROT_READ page in production. Decoded
// columns are frozen: code that needs to grow or edit one must copy it to
// the heap first (temporal.FrozenIndex.detached is the pattern).
//
// The pass flags assignments, op-assignments, ++/-- and copy() whose
// destination indexes a value returned by a column reader — directly
// (r.I64s()[0] = x) or through a variable, with aliases tracked one hop
// deep (col := r.I64s(); c2 := col; c2[i] = x is still flagged). Rebinding
// the variable itself (col = append(...)) is not a write through the view
// and is the sanctioned detach idiom.
var MapMut = &Analyzer{
	Name: "mapmut",
	Doc: "writes through slices returned by snapio.Reader column methods are " +
		"forbidden: under a mapped reader they are read-only views of the " +
		"snapshot file; copy the column to the heap before mutating",
	Run: runMapMut,
}

func runMapMut(pass *Pass) {
	for _, f := range pass.Files {
		for _, unit := range functionUnits(f) {
			checkMapMutUnit(pass, unit)
		}
	}
}

// isColumnReader reports whether f is a snapio column reader: a Reader
// method from columnReaders, or the package-level generic ReadI32s.
func isColumnReader(f *types.Func) bool {
	if f == nil {
		return false
	}
	pkg, recv := funcOwner(f)
	if pkg != snapioPkg {
		return false
	}
	if recv == "Reader" && columnReaders[f.Name()] {
		return true
	}
	return recv == "" && f.Name() == "ReadI32s"
}

// isColumnReadCall reports whether e (unparenthesized) calls a snapio column
// reader, through any call shape — method value, package selector, or an
// explicit generic instantiation like snapio.ReadI32s[int32](r).
func isColumnReadCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation
		fun = ast.Unparen(ix.X)
	}
	switch fn := fun.(type) {
	case *ast.SelectorExpr:
		f, _ := pass.Info.Uses[fn.Sel].(*types.Func)
		return isColumnReader(f)
	case *ast.Ident:
		f, _ := pass.Info.Uses[fn].(*types.Func)
		return isColumnReader(f)
	}
	return false
}

// columnViewSource reports whether e reads a column view: a column reader
// call, optionally re-sliced, or (one hop) a variable already known to hold
// one.
func columnViewSource(pass *Pass, e ast.Expr, views map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	if isColumnReadCall(pass, e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return views[obj]
		}
	}
	return false
}

// checkMapMutUnit analyzes one function body: collect the variables bound to
// column views (two rounds, so an alias declared before its source's binding
// order still resolves one hop), then flag writes through them.
func checkMapMutUnit(pass *Pass, unit funcUnit) {
	views := make(map[types.Object]bool) // variables holding reader column views
	objOf := func(id *ast.Ident) types.Object {
		if obj, ok := pass.Info.Defs[id]; ok && obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	for round := 0; round < 2; round++ {
		walkUnit(unit.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(id)
				if obj == nil {
					continue
				}
				if columnViewSource(pass, as.Rhs[i], views) {
					views[obj] = true
				}
			}
			return true
		})
	}

	report := func(dst ast.Expr, how string) {
		pass.Reportf(dst.Pos(), "write through a snapio.Reader column view (%s): under a mapped "+
			"reader the slice aliases the read-only snapshot mapping; copy the column to the "+
			"heap before mutating", how)
	}
	// checkDst flags dst when it writes through a column view: an index (or
	// re-slice, for copy destinations) rooted in a view variable or directly
	// in a reader call.
	checkDst := func(dst ast.Expr) {
		e := ast.Unparen(dst)
		if sl, ok := e.(*ast.SliceExpr); ok { // copy(col[1:], ...) forms
			e = ast.Unparen(sl.X)
		}
		ix, ok := e.(*ast.IndexExpr)
		if ok {
			e = ast.Unparen(ix.X)
		}
		if isColumnReadCall(pass, e) {
			report(dst, "directly off the reader call")
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && views[obj] {
				report(dst, "via "+id.Name)
			}
		}
	}

	walkUnit(unit.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				// Rebinding the variable (col = append(...)) detaches; only
				// element writes go through the view.
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue
				}
				checkDst(lhs)
			}
		case *ast.IncDecStmt:
			checkDst(st.X)
		case *ast.CallExpr:
			if isBuiltin(pass.Info, st, "copy") && len(st.Args) == 2 {
				checkDst(st.Args[0])
			}
		}
		return true
	})
}
