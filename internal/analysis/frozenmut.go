package analysis

import (
	"go/ast"
	"go/types"
)

const temporalPkg = "pathhist/internal/temporal"

// FrozenMut enforces the publication invariant of ROADMAP ("published index
// state is immutable; mutation = build new + atomic epoch publication") at
// its sharpest edge: the frozen columnar state. A temporal.FrozenIndex or
// temporal.FrozenForest may be written only while it is being constructed —
// through a variable the same function bound to a fresh composite literal
// or new() — because once a snapshot is published (returned, stored,
// fetched from a forest map, received as a parameter) concurrent readers
// hold it lock-free and any write is a data race that no -race run is
// guaranteed to catch.
//
// The pass flags assignments, op-assignments, ++/-- and copy() whose
// destination is rooted in frozen state that the enclosing function did not
// construct itself. Aliased columns are tracked one hop deep
// (col := fx.Ts; col[i] = ... is still a write to fx).
var FrozenMut = &Analyzer{
	Name: "frozenmut",
	Doc: "writes to temporal.FrozenIndex/FrozenForest state are only legal " +
		"during construction (through a locally-built value); published " +
		"snapshots are immutable and mutation means build-new-and-republish",
	Run: runFrozenMut,
}

func runFrozenMut(pass *Pass) {
	for _, f := range pass.Files {
		for _, unit := range functionUnits(f) {
			checkFrozenUnit(pass, unit)
		}
	}
}

// isFrozenType reports whether t is (a pointer to) one of the frozen
// temporal types.
func isFrozenType(t types.Type) bool {
	return isNamed(t, temporalPkg, "FrozenIndex") || isNamed(t, temporalPkg, "FrozenForest")
}

// frozenRoot walks up e's selector/index chain and returns the base
// identifier of the innermost sub-expression whose type is frozen state
// (nil when the chain never touches frozen state, or when the frozen value
// is not rooted in a plain identifier — e.g. produced by a call, which is
// never locally constructed and therefore reported with a nil root).
func frozenRoot(pass *Pass, e ast.Expr) (root *ast.Ident, frozen bool) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if isFrozenType(pass.TypeOf(x.X)) {
				return rootIdent(x.X), true
			}
			e = x.X
		case *ast.IndexExpr:
			if isFrozenType(pass.TypeOf(x.X)) {
				return rootIdent(x.X), true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// checkFrozenUnit analyzes one function body. Two flow-insensitive sets are
// built first: variables the unit binds to freshly constructed frozen
// values, and variables aliasing a column of such fresh values (writes
// through those are construction too).
func checkFrozenUnit(pass *Pass, unit funcUnit) {
	fresh := make(map[types.Object]bool)       // locally constructed frozen values
	freshCol := make(map[types.Object]bool)    // columns sliced off fresh values
	frozenAlias := make(map[types.Object]bool) // columns aliasing published values

	// isFreshExpr reports whether e evaluates to a frozen value this unit
	// constructs: a composite literal, &literal, new(T), or another fresh
	// variable.
	isFreshExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		switch x := e.(type) {
		case *ast.CompositeLit:
			return isFrozenType(pass.TypeOf(x))
		case *ast.CallExpr:
			return isBuiltin(pass.Info, x, "new") && len(x.Args) == 1 &&
				isFrozenType(pass.TypeOf(x.Args[0]))
		case *ast.Ident:
			if obj, ok := pass.Info.Uses[x]; ok {
				return fresh[obj]
			}
		}
		return false
	}
	objOf := func(id *ast.Ident) types.Object {
		if obj, ok := pass.Info.Defs[id]; ok && obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}

	// Pass 1: collect fresh bindings and column aliases.
	walkUnit(unit.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(id)
			if obj == nil {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if isFrozenType(pass.TypeOf(lhs)) && isFreshExpr(rhs) {
				fresh[obj] = true
				continue
			}
			// Column alias: v := fx.Ts (or a slice of it).
			if _, root, ok := columnSource(pass, rhs); ok {
				if root != nil {
					if robj := pass.Info.Uses[root]; robj != nil && fresh[robj] {
						freshCol[obj] = true
						continue
					}
				}
				frozenAlias[obj] = true
			}
		}
		return true
	})

	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(), "write to published frozen %s outside construction; "+
			"published snapshots are immutable — build a new index and republish it", what)
	}
	// checkDst flags dst when it writes through published frozen state.
	checkDst := func(dst ast.Expr) {
		if root, frozen := frozenRoot(pass, dst); frozen {
			if root != nil {
				if obj := pass.Info.Uses[root]; obj != nil && fresh[obj] {
					return
				}
			}
			report(dst, describeFrozen(pass, dst))
			return
		}
		// Writes through a column alias of published state.
		if ix, ok := ast.Unparen(dst).(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && frozenAlias[obj] && !freshCol[obj] {
					report(dst, "column (via alias "+id.Name+")")
				}
			}
		}
	}

	// Pass 2: find the writes.
	walkUnit(unit.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				// Rebinding a variable (fx = ...) is not a mutation; writes
				// go through selectors/indexes.
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue
				}
				checkDst(lhs)
			}
		case *ast.IncDecStmt:
			checkDst(st.X)
		case *ast.CallExpr:
			if isBuiltin(pass.Info, st, "copy") && len(st.Args) == 2 {
				checkDst(st.Args[0])
			}
		}
		return true
	})
}

// columnSource reports whether e reads a column (slice-typed field) off a
// frozen value, returning the selector and its root identifier.
func columnSource(pass *Pass, e ast.Expr) (*ast.SelectorExpr, *ast.Ident, bool) {
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(sl.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !isFrozenType(pass.TypeOf(sel.X)) {
		return nil, nil, false
	}
	if _, ok := pass.TypeOf(sel).Underlying().(*types.Slice); !ok {
		return nil, nil, false
	}
	return sel, rootIdent(sel.X), true
}

// describeFrozen names what is being written for the diagnostic.
func describeFrozen(pass *Pass, dst ast.Expr) string {
	for {
		switch x := dst.(type) {
		case *ast.SelectorExpr:
			if isFrozenType(pass.TypeOf(x.X)) {
				n := namedType(pass.TypeOf(x.X))
				return n.Obj().Name() + "." + x.Sel.Name
			}
			dst = x.X
		case *ast.IndexExpr:
			dst = x.X
		case *ast.ParenExpr:
			dst = x.X
		case *ast.StarExpr:
			dst = x.X
		case *ast.SliceExpr:
			dst = x.X
		default:
			return "state"
		}
	}
}
