package analysis

import (
	"go/token"
	"strings"
)

// The suppression convention (package doc): `//lint:ignore <rules> <reason>`
// silences the named rules on its own line and the line directly below. The
// reason is mandatory so every accepted violation carries its justification
// in the source.

const ignorePrefix = "lint:ignore"

// suppressions maps file name -> line -> rules suppressed at that line.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans a package's comments for lint:ignore
// directives. Malformed directives (missing rule list or reason) are
// returned as diagnostics under the rule "lintignore" — a suppression that
// silently fails to parse would otherwise look like a clean pass.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Rule:    "lintignore",
						Message: "malformed //lint:ignore directive: want //lint:ignore <rule>[,<rule>...] <reason>",
					})
					continue
				}
				byFile := sup[pos.Filename]
				if byFile == nil {
					byFile = make(map[int]map[string]bool)
					sup[pos.Filename] = byFile
				}
				rules := byFile[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					byFile[pos.Line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					if r != "" {
						rules[r] = true
					}
				}
			}
		}
	}
	return sup, malformed
}

// suppressed reports whether a diagnostic of rule at pos is silenced by a
// directive on its line or the line above.
func (s suppressions) suppressed(rule string, pos token.Position) bool {
	byFile := s[pos.Filename]
	if byFile == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if rules := byFile[line]; rules != nil && rules[rule] {
			return true
		}
	}
	return false
}
