// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against `// want` annotations, mirroring the
// golang.org/x/tools package of the same name closely enough that fixtures
// read familiarly:
//
//	fx.Ts[0] = 9 // want `write to published frozen`
//
// Each annotation carries one or more backquoted (or double-quoted) regular
// expressions; every diagnostic on the annotated line must match one of
// them, every annotation must be matched by some diagnostic, and any
// diagnostic on an unannotated line fails the test. Suppressed diagnostics
// never reach the matcher — a fixture line carrying //lint:ignore and no
// `want` is exactly how suppression is proven to work.
package analysistest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pathhist/internal/analysis"
)

// expectation is one regexp of a `// want` annotation.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	met  bool
}

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quotedRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
)

// Run loads the fixture package at dir (relative to the test's working
// directory), applies the analyzers, and reports every mismatch between
// diagnostics and `// want` annotations as a test error.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, err := analysis.Run(".", []string{dir}, analyzers)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("reading fixtures in %s: %v", dir, err)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no %q diagnostic matched /%s/", w.file, w.line, analyzerNames(analyzers), w.re)
		}
	}
}

func analyzerNames(analyzers []*analysis.Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// matchWant marks the first unmet expectation on d's line whose regexp
// matches the message.
func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if w.met || w.file != base || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) || w.re.MatchString(d.Rule+": "+d.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants scans every .go file in dir for `// want` annotations.
func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fw, err := fileWants(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		wants = append(wants, fw...)
	}
	return wants, nil
}

func fileWants(path string) ([]*expectation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	var wants []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
		if quoted == nil {
			return nil, fmt.Errorf("%s:%d: // want with no quoted regexp", base, line)
		}
		for _, q := range quoted {
			pat := q[1]
			if pat == "" {
				pat = q[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", base, line, err)
			}
			wants = append(wants, &expectation{file: base, line: line, re: re})
		}
	}
	return wants, sc.Err()
}
