package analysis

import (
	"go/token"
	"sort"
)

// All returns the suite's analyzers, in rule-name order.
func All() []*Analyzer {
	return []*Analyzer{
		CancelPoll,
		FrozenMut,
		MapMut,
		PoolEscape,
		SnapPin,
		SyncErr,
	}
}

// ByName resolves rule names to analyzers (nil for unknown names).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run loads the packages matching patterns (relative to dir) and applies
// the analyzers, returning the unsuppressed diagnostics sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package and returns the
// unsuppressed diagnostics (plus any malformed-directive findings).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	sup, diags := collectSuppressions(pkg)
	for _, a := range analyzers {
		if !a.applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report: func(pos token.Pos, msg string) {
				p := pkg.Fset.Position(pos)
				if sup.suppressed(a.Name, p) {
					return
				}
				diags = append(diags, Diagnostic{Pos: p, Rule: a.Name, Message: msg})
			},
		}
		a.Run(pass)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
