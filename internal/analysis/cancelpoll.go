package analysis

import (
	"go/ast"
	"go/types"
)

// CancelPoll enforces the deadline-bounding contract of DESIGN.md §12: the
// scan loops over the frozen temporal columns are the only unbounded work
// between two cancellation checks, so every such loop must poll
// Scratch.Canceled at the established stride. A loop that sweeps a column
// without polling turns a 50 ms deadline into "whenever the window ends" —
// the serving layer's 504 fires, but the CPU keeps scanning.
//
// Scope: functions that hold a *snt.Scratch (parameter or receiver field
// access is what distinguishes a query-path scan from construction and
// compaction code, which are not cancellable). Within those, every for or
// range loop that reads a temporal.FrozenIndex column — directly or
// through a local alias (ts := fx.Ts) — must contain a call to
// (*snt.Scratch).Canceled somewhere in its body.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc: "scan loops over frozen columns in Scratch-holding functions must " +
		"poll Scratch.Canceled so deadlines bound scan time",
	Packages: []string{sntPkg, "cancelpoll"},
	Run:      runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !holdsScratch(pass, fd) {
				continue
			}
			aliases := columnAliases(pass, fd.Body)
			checkLoops(pass, fd.Body, aliases)
		}
	}
}

// holdsScratch reports whether the function receives a *snt.Scratch
// through its parameters or receiver.
func holdsScratch(pass *Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, p := range fl.List {
			if t := pass.TypeOf(p.Type); t != nil && isScratchPtr(t) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// columnAliases collects local variables bound to a frozen column
// (v := fx.Ts or a reslice of it) anywhere in body.
func columnAliases(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	aliases := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if _, _, ok := columnSource(pass, ast.Unparen(as.Rhs[i])); !ok {
				continue
			}
			if obj := objectOf(pass, id); obj != nil {
				aliases[obj] = true
			}
		}
		return true
	})
	return aliases
}

func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// checkLoops walks body (closures included — the scratch is captured) and
// reports column-scanning loops without a Canceled poll.
func checkLoops(pass *Pass, body *ast.BlockStmt, aliases map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var rangeX ast.Expr
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
			rangeX = l.X
		default:
			return true
		}
		scans := rangeX != nil && isColumnExpr(pass, rangeX, aliases)
		if !scans {
			ast.Inspect(loopBody, func(m ast.Node) bool {
				if scans {
					return false
				}
				if ix, ok := m.(*ast.IndexExpr); ok && isColumnExpr(pass, ix.X, aliases) {
					scans = true
					return false
				}
				return true
			})
		}
		if !scans {
			return true
		}
		polls := false
		ast.Inspect(loopBody, func(m ast.Node) bool {
			if polls {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if isMethod(calleeFunc(pass.Info, call), sntPkg, "Scratch", "Canceled") {
					polls = true
					return false
				}
			}
			return true
		})
		if !polls {
			pass.Reportf(n.Pos(),
				"scan loop over frozen columns never polls Scratch.Canceled; poll "+
					"every cancelStride records so deadlines bound scan time")
		}
		return true
	})
}

// isColumnExpr reports whether e reads a frozen column: a slice-typed
// selector off a FrozenIndex, or a local alias of one.
func isColumnExpr(pass *Pass, e ast.Expr, aliases map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if _, _, ok := columnSource(pass, e); ok {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil && aliases[obj] {
			return true
		}
	}
	return false
}
