package analysis_test

import (
	"os/exec"
	"strings"
	"testing"

	"pathhist/internal/analysis"
	"pathhist/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package under testdata/src — packages
// that compile but seed one violation per sub-rule, plus negative cases and
// one honored //lint:ignore suppression, checked against // want
// annotations.

func TestFrozenMut(t *testing.T) {
	analysistest.Run(t, "./testdata/src/frozenmut", analysis.FrozenMut)
}

func TestMapMut(t *testing.T) {
	analysistest.Run(t, "./testdata/src/mapmut", analysis.MapMut)
}

func TestSnapPin(t *testing.T) {
	analysistest.Run(t, "./testdata/src/snappin", analysis.SnapPin)
}

func TestSyncErr(t *testing.T) {
	analysistest.Run(t, "./testdata/src/syncerr", analysis.SyncErr)
}

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, "./testdata/src/poolescape", analysis.PoolEscape)
}

func TestCancelPoll(t *testing.T) {
	analysistest.Run(t, "./testdata/src/cancelpoll", analysis.CancelPoll)
}

// TestMalformedDirective checks the suppression machinery fail-closed: a
// directive without a reason is itself reported, and suppresses nothing.
func TestMalformedDirective(t *testing.T) {
	diags, err := analysis.Run(".", []string{"./testdata/src/lintignore"}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	// The malformed directive is reported, and the f.Close() it failed to
	// suppress still fires.
	if got != "lintignore,syncerr" {
		t.Fatalf("rules = %q, want \"lintignore,syncerr\"\ndiags:\n%v", got, diags)
	}
}

// TestByName covers rule-name resolution, including the unknown case.
func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the %s analyzer", a.Name, a.Name)
		}
	}
	if analysis.ByName("nosuchrule") != nil {
		t.Error("ByName(nosuchrule) != nil")
	}
}

// TestLintClean is the acceptance gate: the full suite over the whole
// module reports zero unsuppressed diagnostics. A new violation anywhere in
// the tree fails this test before it fails CI.
func TestLintClean(t *testing.T) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	diags, err := analysis.Run(root, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the violation or add a justified //lint:ignore (see internal/analysis package doc)")
	}
}
