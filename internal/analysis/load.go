package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns (resolved relative to
// dir), typechecking each matched package from source. Dependencies —
// including the standard library — are imported from the compiler export
// data `go list -export` produces, so nothing beyond the Go toolchain is
// required and the load works offline. Test files are not included:
// the suite guards production code.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := CheckFiles(fset, t.ImportPath, files, t.ImportMap, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and typechecks one package from its source files, with
// imports resolved through imp (remapped via importMap first, as vendoring
// or `go vet` configs require). It is the shared core of LoadPackages and
// the vettool mode of cmd/pathhistlint.
func CheckFiles(fset *token.FileSet, importPath string, files []string, importMap map[string]string, imp types.Importer) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &mappedImporter{imp: imp, importMap: importMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// mappedImporter applies one package's import-path remapping before
// delegating to the shared export-data importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

// NewMapImporter returns an importer reading dependencies from the given
// import-path → export-data-file map. This is the shape `go vet` hands a
// vettool via its .cfg PackageFile field.
func NewMapImporter(fset *token.FileSet, packageFile map[string]string) types.Importer {
	return newExportImporter(fset, packageFile)
}

// newExportImporter returns an importer that reads dependencies from the
// export files go list reported, with "unsafe" resolved to types.Unsafe.
// The underlying gc importer caches packages, so one instance must be
// shared across all packages of a load (types identities line up).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	return &exportImporter{gc: gc}
}

type exportImporter struct {
	gc types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}
