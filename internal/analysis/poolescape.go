package analysis

import (
	"go/ast"
	"go/types"
)

const (
	sntPkg  = "pathhist/internal/snt"
	histPkg = "pathhist/internal/hist"
)

// PoolEscape enforces the pooled-scratch ownership contract (DESIGN.md §6):
// a *snt.Scratch obtained from AcquireScratch belongs to one goroutine for
// one bounded stretch of work and must go back to the pool on every path
// out of that stretch — including error and cancellation returns, which is
// why the release must be deferred, not sequenced. A scratch stored past
// return (into a field, global, map, channel, or closure-escaping slot)
// aliases pooled buffers that the next AcquireScratch hands to an unrelated
// query: silent cross-query corruption.
//
// Sub-rules:
//   - a function (or closure) calling snt.AcquireScratch must contain
//     `defer snt.ReleaseScratch(...)`; a sequenced release alone is flagged
//     (early returns and panics leak), a missing release doubly so;
//   - a *snt.Scratch must not be assigned to a field, element, package
//     variable, channel, or composite literal, and a function that
//     acquired one must not return it;
//   - hist.(*Histogram).Recycle may only be called on plain local
//     variables — never on fields, elements, or call results, which is how
//     a histogram shared through a cache or Result ends up recycled while
//     readers still hold it.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "pooled scratch must be released on every path (deferred release), " +
		"must never be stored past return, and only local histograms may be recycled",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	for _, f := range pass.Files {
		for _, unit := range functionUnits(f) {
			checkPoolUnit(pass, unit)
		}
	}
}

func isScratchPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), sntPkg, "Scratch")
}

func checkPoolUnit(pass *Pass, unit funcUnit) {
	var acquires []*ast.CallExpr
	releases, deferredReleases := 0, 0

	walkUnit(unit.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, st)
			switch {
			case isFunc(fn, sntPkg, "AcquireScratch"):
				acquires = append(acquires, st)
			case isFunc(fn, sntPkg, "ReleaseScratch"):
				releases++
			case isMethod(fn, histPkg, "Histogram", "Recycle"):
				checkRecycleReceiver(pass, st)
			}
		case *ast.DeferStmt:
			if isFunc(calleeFunc(pass.Info, st.Call), sntPkg, "ReleaseScratch") {
				deferredReleases++
			}
		case *ast.AssignStmt:
			checkScratchStore(pass, st)
		case *ast.SendStmt:
			if t := pass.TypeOf(st.Value); t != nil && isScratchPtr(t) {
				pass.Reportf(st.Value.Pos(),
					"pooled *snt.Scratch sent on a channel; scratch must not outlive "+
						"the function that acquired it")
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t := pass.TypeOf(v); t != nil && isScratchPtr(t) {
					pass.Reportf(v.Pos(),
						"pooled *snt.Scratch stored in a composite literal; scratch must "+
							"not be stored past return")
				}
			}
		case *ast.ReturnStmt:
			if len(acquires) == 0 {
				return true
			}
			for _, r := range st.Results {
				if t := pass.TypeOf(r); t != nil && isScratchPtr(t) {
					pass.Reportf(r.Pos(),
						"acquired *snt.Scratch returned to the caller; release it here "+
							"and let the caller acquire its own")
				}
			}
		}
		return true
	})

	// A return statement earlier in source than a later acquire is rare
	// enough not to matter for the ordering above; the lifetime rules are
	// what the pass owes its caller.
	if len(acquires) == 0 {
		return
	}
	if deferredReleases == 0 {
		for _, acq := range acquires {
			if releases > 0 {
				pass.Reportf(acq.Pos(),
					"AcquireScratch without a deferred ReleaseScratch: a sequenced "+
						"release leaks the scratch on early returns, panics and "+
						"cancellation paths — use `defer snt.ReleaseScratch(sc)`")
			} else {
				pass.Reportf(acq.Pos(),
					"AcquireScratch is never released in this function; every "+
						"acquired scratch must reach ReleaseScratch on all paths")
			}
		}
	}
}

// checkScratchStore flags assignments that store a *snt.Scratch anywhere
// but a plain local variable.
func checkScratchStore(pass *Pass, as *ast.AssignStmt) {
	n := len(as.Rhs)
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Lhs) == n {
			rhs = as.Rhs[i]
		} else if n == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil || !isScratchPtr(t) {
			continue
		}
		switch dst := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[dst]
			if obj == nil {
				obj = pass.Info.Defs[dst]
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				pass.Reportf(lhs.Pos(),
					"pooled *snt.Scratch stored in package variable %s; scratch must "+
						"not be stored past return", dst.Name)
			}
		case *ast.SelectorExpr:
			pass.Reportf(lhs.Pos(),
				"pooled *snt.Scratch stored in a field; scratch must not be stored "+
					"past return")
		case *ast.IndexExpr:
			pass.Reportf(lhs.Pos(),
				"pooled *snt.Scratch stored in a map or slice element; scratch must "+
					"not be stored past return")
		}
	}
}

// checkRecycleReceiver flags Recycle calls whose receiver is not a plain
// local variable or parameter.
func checkRecycleReceiver(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := ast.Unparen(sel.X)
	if id, ok := recv.(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			if !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
				return // local or parameter: fine
			}
		}
	}
	pass.Reportf(call.Pos(),
		"Recycle on a non-local histogram; only provably-unreachable "+
			"intermediates (plain locals) may go back to the pool — anything "+
			"reachable through a field, cache or Result may still have readers")
}
