package sharded

import (
	"context"
	"errors"
	"strconv"
	"time"

	"pathhist/internal/failpoint"
	"pathhist/internal/snt"
)

// scanOut is the result of one per-shard dispatch: a candidate scan (the
// router's attempt path) or a capped cardinality count (the σL splitter).
type scanOut struct {
	cands   []snt.Cand
	anyData bool
	count   int
}

// errShardShed marks a dispatch refused before issue because the shard's
// health state machine shed it. The router treats it like any other shard
// failure: the shard leaves this query's live set.
var errShardShed = errors.New("sharded: shard shed by health state")

// dispatch runs op against one shard with the full fault-tolerance
// treatment: fault-injection sites, shed-before-dispatch via the health
// machine, a deadline budget carved from the request context, and a hedged
// second attempt on the same immutable snapshot after a p99-based delay
// (first answer wins). Every outcome feeds the health machine, and a
// successful dispatch's latency feeds the hedge-delay estimate.
//
// op must be safe to run twice concurrently (the hedge); the router's ops
// scan immutable index snapshots with private scratch state, which is.
func (c *Cluster) dispatch(ctx context.Context, s *shard, op func(context.Context) (scanOut, error)) (scanOut, error) {
	suffix := "." + strconv.Itoa(s.idx)
	if err := failpoint.Inject(failpoint.ShardDispatch); err != nil {
		return c.dispatchFailed(s, false, err)
	}
	if err := failpoint.Inject(failpoint.ShardDispatch + suffix); err != nil {
		return c.dispatchFailed(s, false, err)
	}
	ok, probe := s.health.admit(time.Now())
	if !ok {
		c.cfg.Counters.ShardsShed.Add(1)
		return scanOut{}, errShardShed
	}
	c.cfg.Counters.ShardDispatches.Add(1)
	bctx, cancel := context.WithTimeout(ctx, c.cfg.ShardBudget)
	defer cancel()
	start := time.Now()
	type attemptRes struct {
		out   scanOut
		err   error
		hedge bool
	}
	// Buffered so attempts outlasting the dispatch (budget exhausted, or the
	// other attempt won) can deliver and exit without a receiver.
	ch := make(chan attemptRes, 2)
	attempt := func(hedge bool) {
		out, err := c.attemptShard(bctx, suffix, op)
		ch <- attemptRes{out: out, err: err, hedge: hedge}
	}
	go attempt(false)
	timer := time.NewTimer(s.hedgeDelay(c.cfg.HedgeDelay))
	defer timer.Stop()
	pending, hedged := 1, false
	hedge := func() {
		hedged = true
		pending++
		c.cfg.Counters.HedgedDispatches.Add(1)
		go attempt(true)
	}
	var lastErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				s.lat.record(time.Since(start))
				s.health.success()
				if r.hedge && pending > 0 {
					c.cfg.Counters.HedgeWins.Add(1)
				}
				return r.out, nil
			}
			lastErr = r.err
			if !hedged {
				// The first attempt failed before the hedge timer: retry
				// immediately instead of waiting out the delay.
				hedge()
				continue
			}
			if pending == 0 {
				return c.dispatchFailed(s, probe, lastErr)
			}
		case <-timer.C:
			if !hedged {
				hedge()
			}
		case <-bctx.Done():
			// Budget exhausted (or the caller gave up): in-flight attempts
			// observe the cancellation through their scratch polls and drain
			// into the buffered channel on their own.
			return c.dispatchFailed(s, probe, bctx.Err())
		}
	}
}

// dispatchFailed books a dispatch failure into the health machine and the
// counters and returns the error.
func (c *Cluster) dispatchFailed(s *shard, probe bool, err error) (scanOut, error) {
	s.health.failure(probe, c.cfg.FailThreshold, c.cfg.ProbeInterval, time.Now())
	c.cfg.Counters.ShardFailures.Add(1)
	return scanOut{}, err
}

// attemptShard is one attempt of a dispatch: the shard.down and shard.slow
// fault-injection sites fire here, inside the hedged region, so a
// Times-limited injection fails (or delays) the first attempt and lets the
// hedge succeed.
func (c *Cluster) attemptShard(ctx context.Context, suffix string, op func(context.Context) (scanOut, error)) (scanOut, error) {
	if err := failpoint.Inject(failpoint.ShardSlow); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardSlow + suffix); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardDown); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardDown + suffix); err != nil {
		return scanOut{}, err
	}
	if err := ctx.Err(); err != nil {
		return scanOut{}, err
	}
	return op(ctx)
}
