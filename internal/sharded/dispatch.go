package sharded

import (
	"context"
	"errors"
	"strconv"
	"time"

	"pathhist/internal/failpoint"
	"pathhist/internal/snt"
)

// scanOut is the result of one per-shard dispatch: a candidate scan (the
// router's attempt path) or a capped cardinality count (the σL splitter).
type scanOut struct {
	cands   []snt.Cand
	anyData bool
	count   int
}

// errShardShed marks a dispatch refused before issue because every replica's
// health state machine shed it. The router treats it like any other shard
// failure: the shard leaves this query's live set.
var errShardShed = errors.New("sharded: shard shed by health state")

// dispatch runs op against one shard with the full fault-tolerance
// treatment: fault-injection sites, shed-before-dispatch via the per-replica
// health machines, a deadline budget carved from the request context, and a
// hedged second attempt after a p99-based delay (first answer wins). The
// first attempt goes to the next admitting replica round-robin; the hedge
// goes to a different admitting replica when the set has one (falling back
// to the same replica otherwise), so a replica stuck in a slow attempt is
// not also the one asked to bail it out. Every outcome feeds the attempted
// replica's own health machine, and a successful attempt's latency feeds
// that replica's hedge-delay estimate.
//
// op must be safe to run twice concurrently (the hedge); the router's ops
// scan immutable index snapshots with private scratch state, which is. All
// replicas of a shard share the primary's published snapshot pointer, so the
// answer is bit-identical regardless of which replica serves it.
func (c *Cluster) dispatch(ctx context.Context, s *shard, op func(context.Context) (scanOut, error)) (scanOut, error) {
	suffix := "." + strconv.Itoa(s.idx)
	if err := failpoint.Inject(failpoint.ShardDispatch); err != nil {
		return c.dispatchFailed(s.primary(), false, err)
	}
	if err := failpoint.Inject(failpoint.ShardDispatch + suffix); err != nil {
		return c.dispatchFailed(s.primary(), false, err)
	}
	first, probe, ok := s.pickReplica(time.Now(), nil)
	if !ok {
		c.cfg.Counters.ShardsShed.Add(1)
		return scanOut{}, errShardShed
	}
	c.cfg.Counters.ShardDispatches.Add(1)
	bctx, cancel := context.WithTimeout(ctx, c.cfg.ShardBudget)
	defer cancel()
	start := time.Now()
	type attemptRes struct {
		out   scanOut
		err   error
		rep   *replica
		probe bool
		hedge bool
	}
	// Buffered so attempts outlasting the dispatch (budget exhausted, or the
	// other attempt won) can deliver and exit without a receiver.
	ch := make(chan attemptRes, 2)
	attempt := func(r *replica, probe, hedge bool) {
		out, err := c.attemptReplica(bctx, s, r, op)
		ch <- attemptRes{out: out, err: err, rep: r, probe: probe, hedge: hedge}
	}
	go attempt(first, probe, false)
	timer := time.NewTimer(first.hedgeDelay(c.cfg.HedgeDelay))
	defer timer.Stop()
	pending, hedged := 1, false
	// booked keeps a replica from absorbing two health failures for one
	// dispatch when both attempts land on it (single-replica shards).
	booked := map[*replica]bool{}
	hedge := func() {
		hedged = true
		pending++
		c.cfg.Counters.HedgedDispatches.Add(1)
		r, hprobe, ok := s.pickReplica(time.Now(), first)
		if !ok {
			r, hprobe = first, false
		}
		if r != first {
			c.cfg.Counters.CrossReplicaHedges.Add(1)
		}
		go attempt(r, hprobe, true)
	}
	var lastErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				r.rep.lat.record(time.Since(start))
				r.rep.health.success()
				if r.hedge && pending > 0 {
					c.cfg.Counters.HedgeWins.Add(1)
				}
				return r.out, nil
			}
			if !booked[r.rep] {
				booked[r.rep] = true
				r.rep.health.failure(r.probe, c.cfg.FailThreshold, c.cfg.ProbeInterval, time.Now())
			}
			lastErr = r.err
			if !hedged {
				// The first attempt failed before the hedge timer: retry
				// immediately instead of waiting out the delay.
				hedge()
				continue
			}
			if pending == 0 {
				c.cfg.Counters.ShardFailures.Add(1)
				return scanOut{}, lastErr
			}
		case <-timer.C:
			if !hedged {
				hedge()
			}
		case <-bctx.Done():
			// Budget exhausted (or the caller gave up): in-flight attempts
			// observe the cancellation through their scratch polls and drain
			// into the buffered channel on their own. The failure is booked
			// on the first replica — it is the one that sat on the budget.
			if booked[first] {
				c.cfg.Counters.ShardFailures.Add(1)
				return scanOut{}, bctx.Err()
			}
			return c.dispatchFailed(first, probe, bctx.Err())
		}
	}
}

// dispatchFailed books a dispatch failure into the replica's health machine
// and the counters and returns the error.
func (c *Cluster) dispatchFailed(r *replica, probe bool, err error) (scanOut, error) {
	r.health.failure(probe, c.cfg.FailThreshold, c.cfg.ProbeInterval, time.Now())
	c.cfg.Counters.ShardFailures.Add(1)
	return scanOut{}, err
}

// attemptReplica is one attempt of a dispatch: the shard.down and shard.slow
// fault-injection sites fire here, inside the hedged region, so a
// Times-limited injection fails (or delays) the first attempt and lets the
// hedge succeed. Each site also has a per-replica form ("shard.slow.1.0" is
// shard 1, replica 0), which is how tests pin a fault to one replica and
// assert the cross-replica hedge rescues the dispatch.
func (c *Cluster) attemptReplica(ctx context.Context, s *shard, r *replica, op func(context.Context) (scanOut, error)) (scanOut, error) {
	suffix := "." + strconv.Itoa(s.idx)
	rsuffix := suffix + "." + strconv.Itoa(r.ri)
	if err := failpoint.Inject(failpoint.ShardSlow); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardSlow + suffix); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardSlow + rsuffix); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardDown); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardDown + suffix); err != nil {
		return scanOut{}, err
	}
	if err := failpoint.Inject(failpoint.ShardDown + rsuffix); err != nil {
		return scanOut{}, err
	}
	if err := ctx.Err(); err != nil {
		return scanOut{}, err
	}
	return op(ctx)
}
