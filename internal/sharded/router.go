package sharded

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pathhist"
	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
)

// ErrInsufficientCoverage is returned when so many shards are out that the
// surviving coverage falls below Config.MinCoverage — the one condition
// under which the router fails a query instead of degrading to a partial
// answer (the serving layer maps it to 503).
var ErrInsufficientCoverage = errors.New("sharded: insufficient shard coverage")

// Result is a routed query's outcome: the unsharded Result's payload plus
// the partial-result contract fields.
type Result struct {
	// Hist is the convolved travel-time histogram. With Partial false it is
	// bit-identical to the unsharded engine's answer over the union of the
	// stripes; with Partial true it is the exact answer over the surviving
	// shards' data only.
	Hist *hist.Histogram
	// Subs are the final sub-queries in path order. For multi-segment
	// sub-paths the samples are in merged candidate order, which differs
	// from the unsharded engine's probe order — an equal multiset, so every
	// derived statistic (histogram, mean, quantiles) is identical.
	Subs []query.SubResult
	// MeanSeconds is Σ X̄_j, the paper's point prediction.
	MeanSeconds float64
	// IndexScans counts scatter-merged scan attempts (the sharded analogue
	// of the unsharded engine's per-attempt count).
	IndexScans int
	// Partial marks an answer computed without the Missing shards.
	Partial bool
	// Missing lists the shards (ascending) whose data the answer excludes.
	Missing []int
	// Restarts counts mid-query shard failures that forced the router to
	// re-run the query without the failed shard.
	Restarts int
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
}

// subQ mirrors the unsharded engine's pending sub-query: the un-shifted
// base interval plus its position in the widening ladder.
type subQ struct {
	path     network.Path
	base     snt.Interval
	filter   snt.Filter
	beta     int
	widenIdx int
	terminal bool
}

// runState is one attempt at answering a query over a fixed live-shard set:
// the per-shard index snapshots pinned for the whole attempt (a concurrent
// Extend cannot shear the query across epochs within a shard) and the
// global time range they span.
type runState struct {
	live []int        // participating shard indexes, ascending
	ixs  []*snt.Index // pinned snapshot per live entry
	tmax int64
}

// shardFailure marks a shard that failed mid-query; the router restarts the
// query without it.
type shardFailure struct {
	shard int
	err   error
}

func (f *shardFailure) Error() string {
	return fmt.Sprintf("sharded: shard %d failed: %v", f.shard, f.err)
}

func (f *shardFailure) Unwrap() error { return f.err }

// Query answers a travel-time query by scattering every sub-query scan
// across the live shards and merging the per-shard candidates back into the
// exact global scan order (see mergeCands). The relaxation procedure runs
// here, once, globally — shards only ever execute bounded candidate scans
// and cardinality counts — so with every shard live the produced histogram,
// sub-queries and point estimate are bit-identical to the unsharded engine
// over the union of the stripes.
//
// Fault handling: shards known down are excluded up front; a shard that
// fails mid-flight (budget exhausted, fault injected, shed by a racing
// health transition) aborts the attempt and the query restarts without it,
// at most once per shard. The final result marks excluded shards in
// Missing with Partial set. Only when coverage falls below the configured
// floor — or the caller's own context expires — does the query fail.
func (c *Cluster) Query(ctx context.Context, q pathhist.Query) (*Result, error) {
	start := time.Now()
	if len(q.Path) == 0 {
		return nil, errors.New("sharded: empty query path")
	}
	for _, edge := range q.Path {
		if int(edge) < 0 || int(edge) >= c.g.NumEdges() {
			return nil, fmt.Errorf("sharded: edge id %d out of range [0, %d)", edge, c.g.NumEdges())
		}
	}
	if !c.g.IsTraversable(q.Path) {
		return nil, errors.New("sharded: path is not traversable")
	}
	if q.Exclude {
		// Trajectory ids are shard-local; a global exclusion id does not
		// identify anything. The serving layer never sends one.
		return nil, errors.New("sharded: trajectory exclusion is not supported in sharded mode")
	}

	var live, missing []int
	now := time.Now()
	for i, s := range c.shards {
		if s.participates(now) {
			live = append(live, i)
		} else {
			missing = append(missing, i)
			c.cfg.Counters.ShardsShed.Add(1)
		}
	}
	restarts := 0
	for {
		if float64(len(live)) < c.cfg.MinCoverage*float64(len(c.shards)) {
			return nil, fmt.Errorf("%w: %d of %d shards live", ErrInsufficientCoverage, len(live), len(c.shards))
		}
		res, err := c.runOnce(ctx, q, live)
		if err == nil {
			res.Partial = len(missing) > 0
			if res.Partial {
				res.Missing = append([]int(nil), missing...)
				sort.Ints(res.Missing)
				c.cfg.Counters.PartialResponses.Add(1)
			}
			res.Restarts = restarts
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller's own deadline or cancellation: a restart cannot
			// help, and a partial answer was never computed.
			return nil, ctx.Err()
		}
		var sf *shardFailure
		if !errors.As(err, &sf) {
			return nil, err
		}
		next := live[:0:len(live)]
		for _, si := range live {
			if si != sf.shard {
				next = append(next, si)
			}
		}
		live = next
		missing = append(missing, sf.shard)
		restarts++
	}
}

// runOnce runs the full sequential relaxation procedure over one fixed
// live-shard set. A per-shard failure surfaces as *shardFailure.
func (c *Cluster) runOnce(ctx context.Context, q pathhist.Query, live []int) (*Result, error) {
	rs := &runState{live: live, ixs: make([]*snt.Index, len(live))}
	for i, si := range live {
		// Pinned from the primary; followers share the same published
		// snapshot pointer, so the pin is valid for whichever replica the
		// dispatcher picks.
		ix, _ := c.shards[si].primary().eng.QueryEngine().Snapshot()
		rs.ixs[i] = ix
		if _, tmax := ix.TimeRange(); i == 0 || tmax > rs.tmax {
			rs.tmax = tmax
		}
	}

	// Mirror pathhist.QueryCtx's query construction, with the global tmax
	// standing in for the single engine's.
	beta := q.Beta
	if beta == 0 {
		beta = 20
	}
	var iv snt.Interval
	switch {
	case q.Periodic || q.Around != 0:
		w := q.WindowSeconds
		if w <= 0 {
			w = 900
		}
		iv = snt.PeriodicAround(q.Around, w)
	default:
		until := q.Until
		if until == 0 {
			until = rs.tmax + 1
		}
		iv = snt.NewFixed(q.From, until)
	}
	user := traj.NoUser
	if q.FilterUser {
		user = q.User
	}
	spq := query.SPQ{
		Path:     q.Path,
		Interval: iv,
		Filter:   snt.Filter{User: user, ExcludeTraj: traj.ID(-1)},
		Beta:     beta,
	}

	res := &Result{}
	var shiftS, shiftR int64
	queue := c.initialSubs(spq)
	for len(queue) > 0 {
		sub := queue[0]
		queue = queue[1:]
		eff := c.effective(sub.base, len(res.Subs), shiftS, shiftR)
		xs, fallback, err := c.scatterScan(ctx, rs, &sub, eff)
		if err != nil {
			return nil, err
		}
		res.IndexScans++
		if len(xs) > 0 {
			h := hist.FromSamples(xs, c.bucketWidth)
			res.Subs = append(res.Subs, query.SubResult{
				Path:     sub.path,
				Interval: eff,
				Filter:   sub.filter,
				X:        xs,
				Hist:     h,
				Fallback: fallback,
			})
			shiftS += int64(h.Min())
			shiftR += int64(h.Max() - h.Min())
			continue
		}
		relaxed, err := c.relax(ctx, rs, sub, eff)
		if err != nil {
			return nil, err
		}
		queue = append(relaxed, queue...)
	}
	res.Hist = convolveSubs(res.Subs)
	for i := range res.Subs {
		res.MeanSeconds += res.Subs[i].MeanX()
	}
	return res, nil
}

// initialSubs partitions the query and applies the per-zone β overrides,
// mirroring the unsharded engine.
func (c *Cluster) initialSubs(q query.SPQ) []subQ {
	parts := c.partitioner.Partition(c.g, q)
	subs := make([]subQ, 0, len(parts))
	for _, s := range parts {
		beta := s.Beta
		if c.cfg.Opts.ZoneBetas != nil && beta > 0 {
			if zb, ok := c.cfg.Opts.ZoneBetas[c.g.Edge(s.Path[0]).Zone]; ok {
				beta = zb
			}
		}
		subs = append(subs, subQ{
			path:     s.Path,
			base:     s.Interval,
			filter:   s.Filter,
			beta:     beta,
			widenIdx: c.widenIndexOf(s.Interval),
		})
	}
	return subs
}

func (c *Cluster) effective(base snt.Interval, done int, shiftS, shiftR int64) snt.Interval {
	if base.IsPeriodic() && done > 0 {
		return base.ShiftEnlarge(shiftS, shiftR)
	}
	return base
}

func (c *Cluster) widenIndexOf(iv snt.Interval) int {
	if !iv.IsPeriodic() {
		return 0
	}
	idx := 0
	for i, a := range c.alphas {
		if iv.Width >= a {
			idx = i
		}
	}
	return idx
}

// scatter fans one op out to every live shard concurrently and collects the
// per-shard outputs. The first failing shard (lowest index, for
// determinism) is reported as a *shardFailure.
func (c *Cluster) scatter(ctx context.Context, rs *runState, op func(ix *snt.Index, ctx context.Context) (scanOut, error)) ([]scanOut, error) {
	outs := make([]scanOut, len(rs.live))
	errs := make([]error, len(rs.live))
	var wg sync.WaitGroup
	for i := range rs.live {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix := rs.ixs[i]
			outs[i], errs[i] = c.dispatch(ctx, c.shards[rs.live[i]], func(ctx context.Context) (scanOut, error) {
				return op(ix, ctx)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &shardFailure{shard: rs.live[i], err: err}
		}
	}
	return outs, nil
}

// taggedCand is a shard-local candidate lifted into the global order.
type taggedCand struct {
	shard int // position in rs.live (ascending shard index)
	c     snt.Cand
}

// scatterScan is one sub-query attempt: scan every live shard's candidates,
// merge them into the global scan order, apply the global β cutoff and the
// Procedure 5 decision ladder, and reconstruct the travel-time samples.
func (c *Cluster) scatterScan(ctx context.Context, rs *runState, sub *subQ, iv snt.Interval) (xs []int, fallback bool, err error) {
	outs, err := c.scatter(ctx, rs, func(ix *snt.Index, ctx context.Context) (scanOut, error) {
		sc := snt.AcquireScratch()
		defer snt.ReleaseScratch(sc)
		sc.SetCancel(ctx.Done())
		cands, anyData := ix.ScanCandidates(sc, sub.path, iv, sub.filter, sub.beta)
		if sc.Canceled() {
			if err := ctx.Err(); err != nil {
				return scanOut{}, err
			}
			return scanOut{}, context.Canceled
		}
		return scanOut{cands: cands, anyData: anyData}, nil
	})
	if err != nil {
		return nil, false, err
	}
	anyData := false
	total := 0
	for _, o := range outs {
		anyData = anyData || o.anyData
		total += len(o.cands)
	}
	if !anyData {
		if len(sub.path) == 1 {
			// The Procedure 5 fallback: the segment occurs nowhere in any
			// shard's trajectory string; answer with the speed-limit
			// estimate.
			return []int{c.g.EstimateTTSeconds(sub.path[0])}, true, nil
		}
		return nil, false, nil
	}
	// total is the capped admitted count Σ_s min(count_s, β): because every
	// per-shard count is capped at the same β the global rule tests against,
	// total < β exactly when the true global count is below β.
	if total < sub.beta && iv.IsPeriodic() {
		return nil, false, nil
	}
	merged := mergeCands(outs, !c.cfg.Opts.OldestFirst)
	if sub.beta > 0 && len(merged) > sub.beta {
		merged = merged[:sub.beta]
	}
	if len(sub.path) == 1 {
		if len(merged) == 0 {
			return []int{c.g.EstimateTTSeconds(sub.path[0])}, true, nil
		}
		// The unsharded scan emits single-segment samples in ascending time
		// order: the reverse of the newest-first merged order.
		xs = make([]int, 0, len(merged))
		if c.cfg.Opts.OldestFirst {
			for i := range merged {
				xs = append(xs, int(merged[i].c.X))
			}
		} else {
			for i := len(merged) - 1; i >= 0; i-- {
				xs = append(xs, int(merged[i].c.X))
			}
		}
		return xs, false, nil
	}
	for i := range merged {
		if merged[i].c.HasX {
			xs = append(xs, int(merged[i].c.X))
		}
	}
	return xs, false, nil
}

// mergeCands re-establishes the global scan order over per-shard candidate
// lists. The global order of the equivalent unsharded index is (timestamp,
// global trajectory id), descending for newest-first scans; stripes are
// contiguous ascending id blocks and every ingested batch lands whole on
// one shard strictly after all indexed data (RouteIngest), so equal
// timestamps can only occur among base-stripe records — where global id
// order is exactly (shard, local id) lexicographic — and the comparator
// below is the global order.
func mergeCands(outs []scanOut, newestFirst bool) []taggedCand {
	n := 0
	for _, o := range outs {
		n += len(o.cands)
	}
	all := make([]taggedCand, 0, n)
	for si, o := range outs {
		for _, cd := range o.cands {
			all = append(all, taggedCand{shard: si, c: cd})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if newestFirst {
			if a.c.Ts != b.c.Ts {
				return a.c.Ts > b.c.Ts
			}
			if a.shard != b.shard {
				return a.shard > b.shard
			}
			return a.c.Traj > b.c.Traj
		}
		if a.c.Ts != b.c.Ts {
			return a.c.Ts < b.c.Ts
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.c.Traj < b.c.Traj
	})
	return all
}

// scatterCount sums the shards' β-capped cardinality counts for a path —
// the σL splitter's probe. The sum of per-shard counts capped at β crosses
// β exactly when the true global count does, which is the only question the
// binary search asks.
func (c *Cluster) scatterCount(ctx context.Context, rs *runState, p network.Path, iv snt.Interval, f snt.Filter, beta int) (int, error) {
	outs, err := c.scatter(ctx, rs, func(ix *snt.Index, ctx context.Context) (scanOut, error) {
		sc := snt.AcquireScratch()
		defer snt.ReleaseScratch(sc)
		sc.SetCancel(ctx.Done())
		n := ix.CountMatchesWith(sc, p, iv, f, beta)
		if sc.Canceled() {
			if err := ctx.Err(); err != nil {
				return scanOut{}, err
			}
			return scanOut{}, context.Canceled
		}
		return scanOut{count: n}, nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, o := range outs {
		total += o.count
	}
	return total, nil
}

// relax is the unsharded engine's Procedure 1 with the σL cardinality
// probes scattered: widen the periodic interval, then split the path (σR or
// σL), then drop non-temporal predicates, finally fall back to all data in
// the fixed global interval with no β.
func (c *Cluster) relax(ctx context.Context, rs *runState, sub subQ, effective snt.Interval) ([]subQ, error) {
	if sub.base.IsPeriodic() && sub.widenIdx+1 < len(c.alphas) {
		sub.widenIdx++
		sub.base = sub.base.Resize(c.alphas[sub.widenIdx])
		return []subQ{sub}, nil
	}
	if len(sub.path) > 1 {
		m, err := c.splitPoint(ctx, rs, &sub, effective)
		if err != nil {
			return nil, err
		}
		mk := func(p network.Path) subQ {
			child := subQ{path: p, base: sub.base, filter: sub.filter, beta: sub.beta}
			if child.base.IsPeriodic() {
				child.base = child.base.Resize(c.alphas[0])
			}
			return child
		}
		return []subQ{mk(sub.path[:m]), mk(sub.path[m:])}, nil
	}
	if sub.filter.HasPredicate() {
		sub.filter = sub.filter.DropPredicates()
		return []subQ{sub}, nil
	}
	if sub.terminal {
		return nil, nil
	}
	return []subQ{{
		path:     sub.path,
		base:     snt.NewFixed(0, rs.tmax+1),
		filter:   sub.filter,
		beta:     0,
		terminal: true,
	}}, nil
}

// splitPoint mirrors the unsharded splitter over scattered counts.
func (c *Cluster) splitPoint(ctx context.Context, rs *runState, sub *subQ, effective snt.Interval) (int, error) {
	l := len(sub.path)
	if c.splitter == query.SigmaR || sub.beta <= 0 {
		return l / 2, nil
	}
	n, err := c.scatterCount(ctx, rs, sub.path[:1], effective, sub.filter, sub.beta)
	if err != nil {
		return 0, err
	}
	if n < sub.beta {
		return 1, nil
	}
	lo, hi := 1, l-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		n, err := c.scatterCount(ctx, rs, sub.path[:mid], effective, sub.filter, sub.beta)
		if err != nil {
			return 0, err
		}
		if n >= sub.beta {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// convolveSubs mirrors the unsharded engine's fold, recycling intermediate
// convolution results.
func convolveSubs(subs []query.SubResult) *hist.Histogram {
	var conv *hist.Histogram
	owned := false
	for i := range subs {
		next := conv.Convolve(subs[i].Hist)
		if owned && next != conv {
			conv.Recycle()
		}
		owned = conv != nil && subs[i].Hist != nil
		conv = next
	}
	return conv
}
