package sharded

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"pathhist"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Shard scaling (the PR 9 experiment): the same dataset served through 1, 2,
// 4, ... shards. Build cost and index memory grow with per-shard constant
// overhead (each stripe carries its own forest, user table and wavelet
// trees), query latency pays one merge over N sub-scans, and ingest
// throughput scales with N because RouteIngest admits one in-flight batch
// per shard — the round-robin reservation turns a serial extend stream into
// N concurrent ones.

// ShardScalingRow is one shard count's measurements.
type ShardScalingRow struct {
	Shards int
	// BuildMs is the wall time of Build: striping plus the per-shard index
	// builds.
	BuildMs float64
	// IndexMiB sums every shard's index memory model (counters, wavelet
	// trees, user tables, temporal forests).
	IndexMiB float64
	// QueryMsPerOp is the mean scatter-gather TripQuery latency over the
	// query set, all shards healthy.
	QueryMsPerOp float64
	// Ingest throughput over the batch stream with `workers` concurrent
	// producers: batches route round-robin, one in flight per shard.
	IngestBatchesPerSec float64
	IngestTrajsPerSec   float64
}

// scalingBatches splits the tail of a start-sorted store into up to
// nBatches contiguous quiescent batches, returning the base prefix length
// and the batch slices. Quiescent cuts keep every batch admissible under
// the cluster's global time-ordering validation even with several batches
// in flight.
func scalingBatches(s *traj.Store, nBatches int) (int, []*traj.Store) {
	qc := s.QuiescentCuts()
	if len(qc) < 2 {
		return 0, nil
	}
	base := qc[len(qc)/2]
	tail := qc[len(qc)/2+1:]
	cuts := []int{base}
	if len(tail) <= nBatches-1 {
		cuts = append(cuts, tail...)
	} else {
		for i := 0; i < nBatches-1; i++ {
			cuts = append(cuts, tail[i*len(tail)/(nBatches-1)])
		}
	}
	var batches []*traj.Store
	for i := 1; i <= len(cuts); i++ {
		hi := s.Len()
		if i < len(cuts) {
			hi = cuts[i]
		}
		if hi > cuts[i-1] {
			batches = append(batches, s.Slice(cuts[i-1], hi))
		}
	}
	return base, batches
}

// RunShardScaling measures one row per shard count over a start-sorted
// store: the base half is built into a cluster, the query set is answered
// through the scatter-gather router, then the tail streams in as up to
// nBatches quiescent batches admitted in order but ingested concurrently —
// batch k+1 enters admission as soon as batch k has reserved its shard, so
// up to N engine extensions overlap, exactly the serving layer's shape.
func RunShardScaling(g *network.Graph, store *traj.Store, queries []pathhist.Query, shardCounts []int, nBatches int) ([]ShardScalingRow, error) {
	s := store.Slice(0, store.Len())
	base, batches := scalingBatches(s, nBatches)
	if base == 0 {
		return nil, errors.New("sharded: store has no quiescent split points")
	}
	var rows []ShardScalingRow
	for _, n := range shardCounts {
		row := ShardScalingRow{Shards: n}
		t0 := time.Now()
		c, err := Build(g, s.Slice(0, base), Config{Shards: n})
		if err != nil {
			return rows, fmt.Errorf("sharded: %d shards: %w", n, err)
		}
		row.BuildMs = float64(time.Since(t0).Microseconds()) / 1000
		for i := 0; i < n; i++ {
			cb, wt, user, forest := c.Engine(i).IndexMemory()
			row.IndexMiB += float64(cb+wt+user+forest) / (1 << 20)
		}

		t0 = time.Now()
		for _, q := range queries {
			if _, err := c.Query(context.Background(), q); err != nil {
				c.Close()
				return rows, fmt.Errorf("sharded: %d shards: query: %w", n, err)
			}
		}
		if len(queries) > 0 {
			row.QueryMsPerOp = float64(time.Since(t0).Microseconds()) / 1000 / float64(len(queries))
		}

		// Admission is serialized batch-by-batch (the cluster's global
		// time-ordering validation requires it), but the engine extension
		// behind it is not: RouteIngest runs the ingest closure outside the
		// admission lock, so releasing the next batch from inside the
		// closure overlaps up to N extensions. The release is a sync.Once
		// fired either on admission or on the error return, so a rejected
		// batch cannot deadlock the stream.
		turns := make([]chan struct{}, len(batches)+1)
		for i := range turns {
			turns[i] = make(chan struct{})
		}
		close(turns[0])
		releases := make([]sync.Once, len(batches))
		var wg sync.WaitGroup
		var ingestErr error
		var errMu sync.Mutex
		trajs := 0
		t0 = time.Now()
		for i, b := range batches {
			trajs += b.Len()
			wg.Add(1)
			go func(i int, b *traj.Store) {
				defer wg.Done()
				release := func() { releases[i].Do(func() { close(turns[i+1]) }) }
				<-turns[i]
				_, err := c.RouteIngest(b, func(shard int) error {
					release()
					_, err := c.Engine(shard).Extend(b)
					return err
				})
				release()
				if err != nil {
					errMu.Lock()
					if ingestErr == nil {
						ingestErr = err
					}
					errMu.Unlock()
				}
			}(i, b)
		}
		wg.Wait()
		secs := time.Since(t0).Seconds()
		c.Close()
		if ingestErr != nil {
			return rows, fmt.Errorf("sharded: %d shards: ingest: %w", n, ingestErr)
		}
		if secs > 0 {
			row.IngestBatchesPerSec = float64(len(batches)) / secs
			row.IngestTrajsPerSec = float64(trajs) / secs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatShardScaling renders the sweep as an aligned table.
func FormatShardScaling(rows []ShardScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s%12s%12s%12s%14s%14s\n",
		"shards", "build ms", "index MiB", "query ms", "batches/s", "trajs/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%12.1f%12.2f%12.3f%14.1f%14.0f\n",
			r.Shards, r.BuildMs, r.IndexMiB, r.QueryMsPerOp, r.IngestBatchesPerSec, r.IngestTrajsPerSec)
	}
	return b.String()
}
