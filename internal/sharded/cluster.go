// Package sharded is the scatter-gather serving layer (DESIGN.md §14): N
// independent pathhist engines, each indexing a contiguous stripe of the
// trajectory set, behind one query router that fans every sub-query out to
// all shards and merges the per-shard candidate scans back into the exact
// global scan order. With all shards healthy the merged answer is
// bit-identical to a single engine over the union of the stripes; when a
// shard is slow, failing, or down, the router hedges, sheds, and finally
// degrades to a partial answer from the survivors instead of failing the
// whole query.
//
// The fault-tolerance machinery lives in three places: a per-shard health
// state machine (health.go) that keeps known-down shards out of the fan-out,
// a dispatcher (dispatch.go) that carves a per-shard deadline budget from
// the request context and hedges a second attempt after a p99-based delay,
// and the router (router.go) that restarts a query without a shard that
// failed mid-flight and reports the missing shards in the result.
package sharded

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathhist"
	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/query"
	"pathhist/internal/traj"
)

// Config parameterises a cluster. The zero value gets sensible defaults
// from normalize; only Shards is commonly set.
type Config struct {
	// Shards is the number of per-stripe engines (clamped to [1, |T|]).
	Shards int
	// Opts configures each shard's engine. Build forces the estimator off
	// and the caches disabled (see ShardOptions): the router runs the
	// relaxation procedure itself from merged scans, so per-shard skip
	// decisions or cache hits would have nothing to attach to.
	Opts pathhist.Options
	// ShardBudget is the per-dispatch deadline carved from the request
	// context (default 2s): a shard that cannot scan one sub-query within
	// it is treated as failed for this query.
	ShardBudget time.Duration
	// HedgeDelay is the hedge timer used until a shard has enough latency
	// history for a p99 estimate (default 25ms). The dispatcher launches a
	// second attempt on the same shard when the first has not answered
	// within the delay; the first answer wins.
	HedgeDelay time.Duration
	// MinCoverage is the fraction of shards that must participate for a
	// query to be answered at all (default 0.5). Below the floor the router
	// returns ErrInsufficientCoverage instead of a partial result.
	MinCoverage float64
	// ProbeInterval is how long a down shard stays shed before a single
	// query is let through as a recovery probe (default 1s).
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive dispatch failures mark a shard
	// down (default 3).
	FailThreshold int
	// ReplicasPerShard is how many query engines serve each shard (default
	// 1). Replicas above the first are followers built with Engine.Replica:
	// they share the primary's published snapshot pointer (and, under mmap
	// loading, the one read-only file mapping), so every replica answers
	// bit-identically at zero marginal index memory. The dispatcher
	// load-balances attempts across a shard's replicas and sends the hedged
	// second attempt to a different replica, and the health machine tracks
	// each replica individually.
	ReplicasPerShard int
	// Counters receives the shard dispatch/hedge/shed/partial counters
	// (an internal set is used when nil).
	Counters *metrics.ServerCounters
}

func (cfg Config) normalized() Config {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ShardBudget <= 0 {
		cfg.ShardBudget = 2 * time.Second
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 25 * time.Millisecond
	}
	if cfg.MinCoverage <= 0 {
		cfg.MinCoverage = 0.5
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ReplicasPerShard < 1 {
		cfg.ReplicasPerShard = 1
	}
	if cfg.Counters == nil {
		cfg.Counters = &metrics.ServerCounters{}
	}
	return cfg
}

// ShardOptions is the per-shard engine configuration derived from the
// cluster options: the cardinality estimator is forced off (a per-shard
// estimate cannot stand in for the global cardinality the relaxation
// procedure decides on, and a skip would break bit-identity with the
// unsharded engine) and both result caches are disabled (the router never
// calls the shard's own TripQuery path, so they would only hold memory).
func ShardOptions(opts pathhist.Options) pathhist.Options {
	opts.Estimator = pathhist.EstimatorOff
	opts.DisableCache = true
	opts.DisableFullResultCache = true
	return opts
}

// replica is one of a shard's query engines plus its individual
// fault-tolerance state. replicas[0] of each shard is the primary — the only
// replica that ingests (and, in the serving layer, owns the WAL and snapshot
// directory); followers are read-only views over the primary's published
// snapshot (query.NewFollower), so a dispatch answers identically no matter
// which replica serves it.
type replica struct {
	ri     int // replica index within the shard
	eng    *pathhist.Engine
	health *shardHealth
	lat    *latencyRing
}

// shard is one stripe's replica set plus the round-robin dispatch cursor.
type shard struct {
	idx      int
	replicas []*replica
	rr       atomic.Uint64 // round-robin replica cursor for dispatch
}

// primary returns the shard's ingest-owning replica.
func (s *shard) primary() *replica { return s.replicas[0] }

// participates reports whether any replica can serve a dispatch — the
// router's pre-scatter check. A shard leaves the fan-out only when every
// replica is shedding.
func (s *shard) participates(now time.Time) bool {
	for _, r := range s.replicas {
		if r.health.participates(now) {
			return true
		}
	}
	return false
}

// pickReplica advances the round-robin cursor and returns the next replica
// whose health machine admits a dispatch (skipping exclude, used by the
// hedge to land on a different replica than the first attempt). The probe
// flag is the admitting replica's recovery-probe marker.
func (s *shard) pickReplica(now time.Time, exclude *replica) (rep *replica, probe, ok bool) {
	n := len(s.replicas)
	start := int(s.rr.Add(1) % uint64(n))
	for off := 0; off < n; off++ {
		r := s.replicas[(start+off)%n]
		if r == exclude {
			continue
		}
		if ok, probe := r.health.admit(now); ok {
			return r, probe, true
		}
	}
	return nil, false, false
}

// Cluster is a set of per-stripe engines and the scatter-gather router over
// them. All methods are safe for concurrent use.
type Cluster struct {
	g      *network.Graph
	cfg    Config
	shards []*shard

	partitioner query.Partitioner
	splitter    query.Splitter
	alphas      []int64
	bucketWidth int

	// ingestMu serialises only the admission decision — validate against the
	// global time range (including batches still in flight, via pendingMax)
	// and reserve a shard. The shard-local durable write itself (WAL append,
	// fsync, index build) runs outside the lock, so batches routed to
	// different shards overlap their fsyncs instead of paying N sequential
	// ones; ingestBusy keeps same-shard batches applying in admission order.
	ingestMu   sync.Mutex
	ingestCond *sync.Cond // signalled when a shard's in-flight ingest ends
	ingestBusy []bool     // per-shard in-flight ingest latch
	rr         int        // round-robin ingest cursor
	pendingMax int64      // latest segment exit over every batch ever admitted
	pendingAny bool       // pendingMax is meaningful
}

// Stripes sorts the store by start time and carves it into n contiguous,
// near-even stripes (deep copies with ids renumbered from 0). Contiguity in
// the sorted order is what makes the router's merge comparator — (timestamp,
// shard, local id) — agree with the unsharded (timestamp, global id) scan
// order: the global id of a base record is its stripe's offset plus its
// local id, and stripe offsets increase with the shard index.
func Stripes(store *traj.Store, n int) []*traj.Store {
	store.SortByStart()
	if n < 1 {
		n = 1
	}
	if n > store.Len() {
		n = store.Len()
	}
	out := make([]*traj.Store, n)
	for i := 0; i < n; i++ {
		lo := i * store.Len() / n
		hi := (i + 1) * store.Len() / n
		out[i] = store.Slice(lo, hi)
	}
	return out
}

// Build stripes the store and builds one engine per stripe. The store is
// sorted by start time as a side effect.
func Build(g *network.Graph, store *traj.Store, cfg Config) (*Cluster, error) {
	if g == nil || store == nil || store.Len() == 0 {
		return nil, errors.New("sharded: nil graph or empty store")
	}
	cfg = cfg.normalized()
	stripes := Stripes(store, cfg.Shards)
	engines := make([]*pathhist.Engine, len(stripes))
	for i, st := range stripes {
		eng, err := pathhist.NewEngine(g, st, ShardOptions(cfg.Opts))
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
		}
		engines[i] = eng
	}
	return New(g, engines, cfg)
}

// New wraps already-built engines (Build's path, and the serving layer's
// restore path, where each shard is rebuilt from its own snapshot and WAL)
// into a cluster. The engines must hold contiguous stripes in shard order —
// New cannot check that; Build and the serving layer guarantee it.
func New(g *network.Graph, engines []*pathhist.Engine, cfg Config) (*Cluster, error) {
	if g == nil || len(engines) == 0 {
		return nil, errors.New("sharded: nil graph or no engines")
	}
	cfg = cfg.normalized()
	cfg.Shards = len(engines)
	c := &Cluster{
		g:           g,
		cfg:         cfg,
		partitioner: partitionerFor(cfg.Opts),
		splitter:    query.SigmaR,
		alphas:      cfg.Opts.IntervalSizes,
		bucketWidth: cfg.Opts.BucketSeconds,
	}
	if cfg.Opts.LongestPrefixSplitting {
		c.splitter = query.SigmaL
	}
	if len(c.alphas) == 0 {
		c.alphas = query.DefaultAlphas
	}
	if c.bucketWidth <= 0 {
		c.bucketWidth = 10
	}
	for i, eng := range engines {
		s := &shard{idx: i}
		for ri := 0; ri < cfg.ReplicasPerShard; ri++ {
			re := eng
			if ri > 0 {
				re = eng.Replica()
			}
			s.replicas = append(s.replicas, &replica{
				ri:     ri,
				eng:    re,
				health: &shardHealth{},
				lat:    &latencyRing{},
			})
		}
		c.shards = append(c.shards, s)
	}
	c.ingestCond = sync.NewCond(&c.ingestMu)
	c.ingestBusy = make([]bool, len(c.shards))
	return c, nil
}

// partitionerFor mirrors pathhist's Options-to-partitioner mapping.
func partitionerFor(opts pathhist.Options) query.Partitioner {
	if opts.RegularP > 0 {
		return query.Partitioner{Kind: query.Regular, P: opts.RegularP}
	}
	switch opts.Partition {
	case pathhist.ByCategory:
		return query.Partitioner{Kind: query.Category}
	case pathhist.ByZoneAndCategory:
		return query.Partitioner{Kind: query.ZoneCategory}
	case pathhist.NoPartition:
		return query.Partitioner{Kind: query.None}
	case pathhist.MainRoadUserFilters:
		return query.Partitioner{Kind: query.MDM}
	case pathhist.EverySegment:
		return query.Partitioner{Kind: query.Regular, P: 1}
	default:
		return query.Partitioner{Kind: query.ZoneKind}
	}
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Engine returns shard i's primary engine (the serving layer wires each one
// to its own WAL and snapshot directory).
func (c *Cluster) Engine(i int) *pathhist.Engine { return c.shards[i].primary().eng }

// ReplicasPerShard returns the configured replica-set size.
func (c *Cluster) ReplicasPerShard() int { return c.cfg.ReplicasPerShard }

// Counters returns the cluster's metrics sink.
func (c *Cluster) Counters() *metrics.ServerCounters { return c.cfg.Counters }

// Trajectories sums the indexed trajectory count over all shards.
func (c *Cluster) Trajectories() int {
	n := 0
	for _, s := range c.shards {
		n += s.primary().eng.Trajectories()
	}
	return n
}

// Close closes every shard engine (stopping background compactors).
// Follower replicas share the primary's snapshot and have no background
// machinery of their own, so closing the primaries is enough.
func (c *Cluster) Close() {
	for _, s := range c.shards {
		s.primary().eng.Close()
	}
}

// SetDegraded feeds shard i's serving-layer degraded latch (read-only mode
// after a WAL failure) into its health state: a degraded shard still serves
// reads, so the router keeps dispatching to it, but ingest routing avoids
// it. The latch applies to every replica — the degraded condition (a failed
// WAL) belongs to the shard's store, not to one view of it.
func (c *Cluster) SetDegraded(i int, degraded bool) {
	for _, r := range c.shards[i].replicas {
		r.health.setDegraded(degraded)
	}
}

// ReplicaStatus is one replica's health snapshot for /statsz.
type ReplicaStatus struct {
	State       string        `json:"state"`
	ConsecFails int           `json:"consecutive_failures,omitempty"`
	P99         time.Duration `json:"-"`
	P99Millis   float64       `json:"p99_ms"`
}

// ShardStatus is one shard's health snapshot for /statsz. The shard-level
// fields carry the primary replica's state (the primary owns ingest and
// durability, so its health is what operators page on); Replicas lists every
// replica individually, present only when the replica set is larger than
// one.
type ShardStatus struct {
	State        string          `json:"state"`
	ConsecFails  int             `json:"consecutive_failures,omitempty"`
	P99          time.Duration   `json:"-"`
	P99Millis    float64         `json:"p99_ms"`
	Trajectories int             `json:"trajectories"`
	Epoch        uint64          `json:"epoch"`
	Replicas     []ReplicaStatus `json:"replicas,omitempty"`
}

// Status snapshots every shard's health, latency and index state.
func (c *Cluster) Status() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, s := range c.shards {
		p := s.primary()
		st, fails := p.health.status()
		p99 := p.lat.p99()
		_, epoch := p.eng.QueryEngine().Snapshot()
		out[i] = ShardStatus{
			State:        st.String(),
			ConsecFails:  fails,
			P99:          p99,
			P99Millis:    float64(p99) / float64(time.Millisecond),
			Trajectories: p.eng.Trajectories(),
			Epoch:        epoch,
		}
		if len(s.replicas) > 1 {
			for _, r := range s.replicas {
				rst, rfails := r.health.status()
				rp99 := r.lat.p99()
				out[i].Replicas = append(out[i].Replicas, ReplicaStatus{
					State:       rst.String(),
					ConsecFails: rfails,
					P99:         rp99,
					P99Millis:   float64(rp99) / float64(time.Millisecond),
				})
			}
		}
	}
	return out
}

// ErrNoIngestShard is returned when every shard is down or degraded and no
// shard can durably accept a batch.
var ErrNoIngestShard = errors.New("sharded: no healthy shard to ingest into")

// RouteIngest validates a batch against the global time range, picks the
// ingest shard round-robin among healthy (not down, not degraded) shards,
// and runs the caller's ingest function for that shard. Admission — the
// validation plus the shard reservation — happens under the cluster's
// ingest lock; the ingest function itself runs outside it, so batches
// admitted to different shards overlap their durable writes (N concurrent
// fsyncs instead of N sequential ones). Two pieces keep that safe:
//
//   - pendingMax extends the validation watermark over batches still in
//     flight: every admitted batch must start strictly after every segment
//     exit any earlier batch admitted, whether or not that batch has been
//     applied yet. That global quiescence is what keeps cross-shard merge
//     order exact after ingestion — records of different batches can never
//     share a timestamp. The watermark stays even if an admitted batch's
//     ingest then fails (fail-closed: a batch overlapping a failed window
//     is rejected rather than admitted into an uncertain order).
//   - ingestBusy serialises same-shard batches in admission order: a shard
//     with an ingest in flight is not reserved again until it completes, so
//     a later batch can never apply before an earlier one on the same
//     engine (reservation waits when every healthy shard is busy).
//
// The ingest function performs the shard-local durable write (the serving
// layer logs to the shard's WAL and extends its engine; Extend below just
// extends). Its error is returned verbatim.
func (c *Cluster) RouteIngest(batch *traj.Store, ingest func(shard int) error) (int, error) {
	c.ingestMu.Lock()
	if err := c.validateGlobalLocked(batch); err != nil {
		c.ingestMu.Unlock()
		return -1, err
	}
	si, err := c.reserveIngestShardLocked()
	if err != nil {
		c.ingestMu.Unlock()
		return -1, err
	}
	if batch != nil && batch.Len() > 0 {
		if _, exit := batch.TimeRange(); !c.pendingAny || exit > c.pendingMax {
			c.pendingMax, c.pendingAny = exit, true
		}
	}
	c.ingestMu.Unlock()
	err = ingest(si)
	c.ingestMu.Lock()
	c.ingestBusy[si] = false
	c.ingestCond.Broadcast()
	c.ingestMu.Unlock()
	return si, err
}

// Extend routes a batch to one shard's engine (the library-mode ingest; the
// serving layer routes through RouteIngest with its own durable write). An
// empty batch is a no-op with shard -1 and zero stats.
func (c *Cluster) Extend(ctx context.Context, batch *traj.Store) (int, pathhist.IngestStats, error) {
	var st pathhist.IngestStats
	if batch == nil || batch.Len() == 0 {
		return -1, st, nil
	}
	si, err := c.RouteIngest(batch, func(shard int) error {
		var err error
		st, err = c.shards[shard].primary().eng.ExtendCtx(ctx, batch)
		return err
	})
	return si, st, err
}

// validateGlobalLocked checks the cross-shard Extend precondition: the batch
// must start strictly after the latest segment exit on ANY shard — not just
// the target's — and after every batch admitted before it, applied or still
// in flight (pendingMax). A batch older than some other shard's data would
// pass the target shard's own validation and silently break global merge
// order. Callers hold ingestMu.
func (c *Cluster) validateGlobalLocked(batch *traj.Store) error {
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	minStart := int64(0)
	for i := range batch.All() {
		if s := batch.All()[i].StartTime(); i == 0 || s < minStart {
			minStart = s
		}
	}
	if c.pendingAny && minStart <= c.pendingMax {
		return fmt.Errorf("sharded: batch starts at %d, inside the admitted range ending %d",
			minStart, c.pendingMax)
	}
	for _, s := range c.shards {
		ix, _ := s.primary().eng.QueryEngine().Snapshot()
		if _, tmax := ix.TimeRange(); minStart <= tmax {
			return fmt.Errorf("sharded: batch starts at %d, inside shard %d's indexed range ending %d",
				minStart, s.idx, tmax)
		}
	}
	return nil
}

// reserveIngestShardLocked advances the round-robin cursor to the next shard
// that can durably ingest and has no ingest in flight, latching its busy
// flag. When some shard could ingest but every such shard is busy, it waits
// for one to free up; when no shard can ingest at all it fails immediately.
// Callers hold ingestMu.
func (c *Cluster) reserveIngestShardLocked() (int, error) {
	n := len(c.shards)
	for {
		anyIngestable := false
		rerouted := false
		for off := 0; off < n; off++ {
			si := (c.rr + off) % n
			// Ingest goes through the primary only: followers are read-only
			// views and return ErrFollower on Extend.
			if !c.shards[si].primary().health.ingestable() {
				rerouted = true
				continue
			}
			anyIngestable = true
			if c.ingestBusy[si] {
				continue
			}
			if rerouted {
				c.cfg.Counters.IngestReroutes.Add(1)
			}
			c.ingestBusy[si] = true
			c.rr = (si + 1) % n
			return si, nil
		}
		if !anyIngestable {
			return -1, ErrNoIngestShard
		}
		c.ingestCond.Wait()
	}
}
