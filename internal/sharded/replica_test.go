package sharded

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"pathhist"
	"pathhist/internal/failpoint"
	"pathhist/internal/metrics"
	"pathhist/internal/workload"
)

// replicaCluster builds a small cluster with the given replica-set size.
func replicaCluster(t *testing.T, shards, replicas int, counters *metrics.ServerCounters) (*Cluster, *pathhist.Engine, *testingDataset) {
	t.Helper()
	ds := testDataset(t)
	ref, err := pathhist.NewEngine(ds.G, copyStore(ds.Store), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(ds.G, copyStore(ds.Store), Config{
		Shards:           shards,
		ReplicasPerShard: replicas,
		Counters:         counters,
		HedgeDelay:       5 * time.Millisecond,
		ProbeInterval:    time.Minute, // keep downed replicas shed for the test's duration
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	tmin, tmax := ds.Store.TimeRange()
	return c, ref, &testingDataset{ds: ds, tmin: tmin, tmax: tmax}
}

type testingDataset struct {
	ds         *workload.Dataset
	tmin, tmax int64
}

// TestReplicaSetConstruction pins the replica-set shape: K engines per
// shard, replicas[0] the primary, followers sharing the primary's published
// snapshot, and per-replica status exported when K > 1.
func TestReplicaSetConstruction(t *testing.T) {
	c, _, _ := replicaCluster(t, 2, 3, &metrics.ServerCounters{})
	if c.ReplicasPerShard() != 3 {
		t.Fatalf("ReplicasPerShard = %d", c.ReplicasPerShard())
	}
	for _, s := range c.shards {
		if len(s.replicas) != 3 {
			t.Fatalf("shard %d has %d replicas", s.idx, len(s.replicas))
		}
		p := s.primary()
		if p.eng.QueryEngine().Follower() {
			t.Fatalf("shard %d primary is a follower", s.idx)
		}
		pix, pep := p.eng.QueryEngine().Snapshot()
		for _, r := range s.replicas[1:] {
			if !r.eng.QueryEngine().Follower() {
				t.Fatalf("shard %d replica %d is not a follower", s.idx, r.ri)
			}
			rix, rep := r.eng.QueryEngine().Snapshot()
			if rix != pix || rep != pep {
				t.Fatalf("shard %d replica %d snapshot diverges from primary", s.idx, r.ri)
			}
		}
	}
	for i, st := range c.Status() {
		if len(st.Replicas) != 3 {
			t.Fatalf("shard %d status has %d replica entries, want 3", i, len(st.Replicas))
		}
		for ri, rs := range st.Replicas {
			if rs.State != "ready" {
				t.Fatalf("shard %d replica %d state %q", i, ri, rs.State)
			}
		}
	}
	// K=1 keeps the status shape of the pre-replica cluster.
	c1, _, _ := replicaCluster(t, 2, 1, &metrics.ServerCounters{})
	for i, st := range c1.Status() {
		if st.Replicas != nil {
			t.Fatalf("shard %d with one replica exports replica entries: %+v", i, st.Replicas)
		}
	}
}

// TestCrossReplicaHedge drives dispatch directly: the first attempt stalls
// past the hedge timer, and the hedged second attempt must land on a
// DIFFERENT replica of the same shard and win.
func TestCrossReplicaHedge(t *testing.T) {
	counters := &metrics.ServerCounters{}
	c, _, _ := replicaCluster(t, 1, 2, counters)

	var calls atomic.Int64
	release := make(chan struct{})
	op := func(ctx context.Context) (scanOut, error) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-ctx.Done():
				return scanOut{}, ctx.Err()
			}
		}
		return scanOut{anyData: true}, nil
	}
	out, err := c.dispatch(context.Background(), c.shards[0], op)
	close(release)
	if err != nil || !out.anyData {
		t.Fatalf("dispatch: %+v, %v", out, err)
	}
	if n := counters.HedgedDispatches.Load(); n != 1 {
		t.Fatalf("HedgedDispatches = %d, want 1", n)
	}
	if n := counters.CrossReplicaHedges.Load(); n != 1 {
		t.Fatalf("CrossReplicaHedges = %d, want 1 (hedge must pick the other replica)", n)
	}
	if n := counters.HedgeWins.Load(); n != 1 {
		t.Fatalf("HedgeWins = %d, want 1", n)
	}
	// Exactly one replica recorded the winning latency; the stalled one
	// recorded nothing.
	recorded := 0
	for _, r := range c.shards[0].replicas {
		if r.lat.n > 0 {
			recorded++
		}
	}
	if recorded != 1 {
		t.Fatalf("%d replicas recorded latency, want 1", recorded)
	}
}

// TestSameReplicaHedgeWithOneReplica: with a replica set of one the hedge
// re-asks the same engine (the pre-replica behavior) and the cross-replica
// counter stays zero.
func TestSameReplicaHedgeWithOneReplica(t *testing.T) {
	counters := &metrics.ServerCounters{}
	c, _, _ := replicaCluster(t, 1, 1, counters)

	var calls atomic.Int64
	release := make(chan struct{})
	op := func(ctx context.Context) (scanOut, error) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-ctx.Done():
				return scanOut{}, ctx.Err()
			}
		}
		return scanOut{anyData: true}, nil
	}
	out, err := c.dispatch(context.Background(), c.shards[0], op)
	close(release)
	if err != nil || !out.anyData {
		t.Fatalf("dispatch: %+v, %v", out, err)
	}
	if n := counters.HedgedDispatches.Load(); n != 1 {
		t.Fatalf("HedgedDispatches = %d, want 1", n)
	}
	if n := counters.CrossReplicaHedges.Load(); n != 0 {
		t.Fatalf("CrossReplicaHedges = %d, want 0 with one replica", n)
	}
	if n := counters.HedgeWins.Load(); n != 1 {
		t.Fatalf("HedgeWins = %d, want 1", n)
	}
}

// TestReplicaFaultIsolation pins one replica down with a replica-scoped
// fault injection: every dispatch that lands on it first is rescued by a
// cross-replica hedge, no query degrades to partial, answers stay
// bit-identical to the unsharded engine, and the health machine takes only
// the faulty replica down while its sibling keeps the shard serving.
func TestReplicaFaultIsolation(t *testing.T) {
	counters := &metrics.ServerCounters{}
	c, ref, w := replicaCluster(t, 2, 2, counters)

	site := failpoint.ShardDown + ".0.0" // shard 0, replica 0 (the primary), every attempt
	failpoint.Enable(site, failpoint.Injection{Err: errors.New("injected replica fault")})
	defer failpoint.Disable(site)

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		q := randomQuery(rng, w.ds, w.tmin, w.tmax)
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial || got.Restarts != 0 {
			t.Fatalf("query %d degraded despite a healthy sibling replica: %+v", i, got)
		}
		compareShardedVsPublic(t, "replica-isolated", 2, q, got, want)
	}
	if n := counters.CrossReplicaHedges.Load(); n < 1 {
		t.Fatalf("CrossReplicaHedges = %d, want >= 1", n)
	}
	st := c.Status()
	if got := st[0].Replicas[0].State; got != "down" {
		t.Fatalf("faulty replica state = %q, want down", got)
	}
	if got := st[0].Replicas[1].State; got != "ready" {
		t.Fatalf("sibling replica state = %q, want ready", got)
	}
	if got := st[1].Replicas[0].State; got != "ready" {
		t.Fatalf("other shard's primary state = %q, want ready", got)
	}
}

// TestReplicaDegradedLatchAppliesToAll: the serving layer's degraded latch
// (a shard-level WAL failure) must show on every replica — the condition
// belongs to the shard's store, not to one view of it.
func TestReplicaDegradedLatchAppliesToAll(t *testing.T) {
	c, _, _ := replicaCluster(t, 2, 2, &metrics.ServerCounters{})
	c.SetDegraded(0, true)
	st := c.Status()
	for ri, rs := range st[0].Replicas {
		if rs.State != "degraded" {
			t.Fatalf("shard 0 replica %d state = %q, want degraded", ri, rs.State)
		}
	}
	for ri, rs := range st[1].Replicas {
		if rs.State != "ready" {
			t.Fatalf("shard 1 replica %d state = %q, want ready", ri, rs.State)
		}
	}
	c.SetDegraded(0, false)
	if st := c.Status(); st[0].Replicas[0].State != "ready" {
		t.Fatalf("latch did not clear: %q", st[0].Replicas[0].State)
	}
}

// TestShardedReplicasMatchUnsharded: the full differential — a cluster with
// replica sets answers bit-identically to the unsharded engine under the
// random query mix, with dispatches spread over the replicas.
func TestShardedReplicasMatchUnsharded(t *testing.T) {
	counters := &metrics.ServerCounters{}
	c, ref, w := replicaCluster(t, 3, 2, counters)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		q := randomQuery(rng, w.ds, w.tmin, w.tmax)
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Partial {
			t.Fatalf("query %d partial with healthy replicas", i)
		}
		compareShardedVsPublic(t, "replicas", 3, q, got, want)
	}
	// Round-robin spread: with 2 replicas per shard and dozens of
	// dispatches, both replicas of shard 0 must have served something.
	for _, r := range c.shards[0].replicas {
		if r.lat.n == 0 {
			t.Fatalf("replica %d of shard 0 never served a dispatch", r.ri)
		}
	}
}
