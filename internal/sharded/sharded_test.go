package sharded

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"pathhist"
	"pathhist/internal/failpoint"
	"pathhist/internal/hist"
	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

func testDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 15
	cfg.Days = 30
	cfg.TargetTrips = 500
	return workload.BuildDataset(cfg)
}

// copyStore deep-copies a store so one dataset can seed several engines
// (NewEngine and Build sort their store and reassign ids in place).
func copyStore(s *traj.Store) *traj.Store { return s.Slice(0, s.Len()) }

// randomQuery draws a query of the differential mix: sub-paths of real
// trajectories (occasionally perturbed into likely-unindexed paths), fixed
// and periodic intervals, optional user filters, varying β.
func randomQuery(rng *rand.Rand, ds *workload.Dataset, tmin, tmax int64) pathhist.Query {
	tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
	tp := tr.Path()
	plen := 1 + rng.Intn(6)
	if plen > len(tp) {
		plen = len(tp)
	}
	off := rng.Intn(len(tp) - plen + 1)
	p := append(network.Path(nil), tp[off:off+plen]...)
	q := pathhist.Query{Path: p}
	switch rng.Intn(3) {
	case 0:
		q.From = tmin + rng.Int63n(tmax-tmin)
		if rng.Intn(2) == 0 {
			q.Until = q.From + rng.Int63n(tmax-q.From) + 1
		}
	case 1:
		q.Around = tmin + rng.Int63n(tmax-tmin)
		q.WindowSeconds = 900 + rng.Int63n(3600)
	default:
		q.Periodic = true
		q.Around = tmin + rng.Int63n(tmax-tmin)
	}
	if rng.Intn(3) == 0 {
		q.FilterUser = true
		q.User = traj.UserID(rng.Intn(15))
	}
	if rng.Intn(4) != 0 {
		q.Beta = 1 + rng.Intn(30)
	}
	return q
}

func histsEqual(a, b *hist.Histogram) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.BucketWidth() != b.BucketWidth() || a.NumSamples() != b.NumSamples() ||
		a.Min() != b.Min() || a.Max() != b.Max() || a.Total() != b.Total() {
		return false
	}
	w := a.BucketWidth()
	for x := a.Min() / w * w; x <= a.Max(); x += w {
		if a.Count(x) != b.Count(x) {
			return false
		}
	}
	return true
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShardedMatchesUnsharded(t *testing.T) {
	ds := testDataset(t)
	tmin, tmax := ds.Store.TimeRange()
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts pathhist.Options
	}{
		{"default", pathhist.Options{}},
		{"sigmaL-nocache", pathhist.Options{
			LongestPrefixSplitting: true,
			DisableCache:           true,
			DisableFullResultCache: true,
		}},
		{"partitioned-oldestfirst", pathhist.Options{PartitionDays: 7, OldestFirst: true}},
	} {
		ref, err := pathhist.NewEngine(ds.G, copyStore(ds.Store), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4} {
			c, err := Build(ds.G, copyStore(ds.Store), Config{Shards: n, Opts: tc.opts})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(97 + n)))
			for trial := 0; trial < 80; trial++ {
				q := randomQuery(rng, ds, tmin, tmax)
				want, err := ref.Query(q)
				if err != nil {
					t.Fatalf("%s/N=%d: unsharded: %v", tc.name, n, err)
				}
				got, err := c.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s/N=%d: sharded: %v (query %+v)", tc.name, n, err, q)
				}
				if got.Partial || len(got.Missing) != 0 || got.Restarts != 0 {
					t.Fatalf("%s/N=%d: unexpected degradation %+v", tc.name, n, got)
				}
				compareShardedVsPublic(t, tc.name, n, q, got, want)
			}
			c.Close()
		}
	}
}

// compareShardedVsPublic compares a routed result against the public
// pathhist result (which carries the same sub-query payload).
func compareShardedVsPublic(t *testing.T, name string, n int, q pathhist.Query, got *Result, want *pathhist.Result) {
	t.Helper()
	tag := name + "/N=" + itoa(n)
	if !histsEqual(got.Hist, want.Histogram) {
		t.Fatalf("%s: histogram mismatch for %+v", tag, q)
	}
	if len(got.Subs) != len(want.Subs) {
		t.Fatalf("%s: %d subs vs %d for %+v", tag, len(got.Subs), len(want.Subs), q)
	}
	for i := range got.Subs {
		gs, ws := &got.Subs[i], &want.Subs[i]
		if len(gs.Path) != len(ws.Path) {
			t.Fatalf("%s: sub %d path %v vs %v for %+v", tag, i, gs.Path, ws.Path, q)
		}
		for j := range gs.Path {
			if gs.Path[j] != ws.Path[j] {
				t.Fatalf("%s: sub %d path %v vs %v for %+v", tag, i, gs.Path, ws.Path, q)
			}
		}
		if gs.Fallback != ws.Fallback {
			t.Fatalf("%s: sub %d fallback %v vs %v for %+v", tag, i, gs.Fallback, ws.Fallback, q)
		}
		if len(gs.X) != ws.Samples {
			t.Fatalf("%s: sub %d %d samples vs %d for %+v", tag, i, len(gs.X), ws.Samples, q)
		}
		if !histsEqual(gs.Hist, ws.Histogram) {
			t.Fatalf("%s: sub %d histogram mismatch for %+v", tag, i, q)
		}
		if diff := math.Abs(gs.MeanX() - ws.MeanTT); diff > 1e-6*(1+math.Abs(ws.MeanTT)) {
			t.Fatalf("%s: sub %d mean %v vs %v for %+v", tag, i, gs.MeanX(), ws.MeanTT, q)
		}
	}
	if diff := math.Abs(got.MeanSeconds - want.MeanSeconds); diff > 1e-6*(1+math.Abs(want.MeanSeconds)) {
		t.Fatalf("%s: mean %v vs %v for %+v", tag, got.MeanSeconds, want.MeanSeconds, q)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestShardedConcurrentExtend ingests quiescent batches through the
// cluster's round-robin routing while queries run concurrently (the -race
// exercise), then verifies post-ingest answers are bit-identical to an
// unsharded engine fed the same batches in the same order.
func TestShardedConcurrentExtend(t *testing.T) {
	ds := testDataset(t)
	tmin, tmax := ds.Store.TimeRange()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) < 4 {
		t.Skip("dataset has too few quiescent cuts")
	}
	base := cuts[len(cuts)*3/5]
	var batchCuts []int
	for _, c := range cuts {
		if c > base {
			batchCuts = append(batchCuts, c)
		}
	}
	if len(batchCuts) > 6 {
		// Keep a handful of batches; each one costs two index extensions.
		step := len(batchCuts) / 6
		var kept []int
		for i := step - 1; i < len(batchCuts); i += step {
			kept = append(kept, batchCuts[i])
		}
		batchCuts = kept
	}
	bounds := append([]int{base}, batchCuts...)
	bounds = append(bounds, ds.Store.Len())

	ref, err := pathhist.NewEngine(ds.G, ds.Store.Slice(0, base), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(ds.G, ds.Store.Slice(0, base), Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randomQuery(rng, ds, tmin, tmax)
				if _, err := c.Query(ctx, q); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}(int64(7 + w))
	}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo >= hi {
			continue
		}
		if si, _, err := c.Extend(ctx, ds.Store.Slice(lo, hi)); err != nil {
			t.Fatalf("cluster extend [%d,%d) on shard %d: %v", lo, hi, si, err)
		}
		if _, err := ref.Extend(ds.Store.Slice(lo, hi)); err != nil {
			t.Fatalf("reference extend [%d,%d): %v", lo, hi, err)
		}
	}
	close(stop)
	wg.Wait()
	if c.Trajectories() != ds.Store.Len() {
		t.Fatalf("cluster indexes %d trajectories, want %d", c.Trajectories(), ds.Store.Len())
	}

	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(rng, ds, tmin, tmax)
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("sharded: %v (query %+v)", err, q)
		}
		compareShardedVsPublic(t, "post-extend", 4, q, got, want)
	}
}

// TestShardedOneShardDownPartial fault-injects shard 2 of 4 hard down and
// verifies the partial-result contract: queries still answer, marked
// partial with the missing shard listed, and the merged histogram is
// exactly the full answer over the surviving shards' stripes. It then lifts
// the fault and verifies the recovery probe restores full answers.
func TestShardedOneShardDownPartial(t *testing.T) {
	ds := testDataset(t)
	tmin, tmax := ds.Store.TimeRange()

	// Reference for the degraded period: an unsharded engine over the
	// surviving stripes (0, 1, 3) concatenated in shard order.
	stripes := Stripes(copyStore(ds.Store), 4)
	survivors := traj.NewStore()
	for _, si := range []int{0, 1, 3} {
		for i := range stripes[si].All() {
			tr := &stripes[si].All()[i]
			survivors.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
		}
	}
	partialRef, err := pathhist.NewEngine(ds.G, survivors, pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullRef, err := pathhist.NewEngine(ds.G, copyStore(ds.Store), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}

	counters := &metrics.ServerCounters{}
	c, err := Build(ds.G, copyStore(ds.Store), Config{
		Shards:        4,
		Counters:      counters,
		ProbeInterval: 50 * time.Millisecond,
		HedgeDelay:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	boom := errors.New("injected shard fault")
	site := failpoint.ShardDown + ".2"
	failpoint.Enable(site, failpoint.Injection{Err: boom})
	defer failpoint.Disable(site)

	ctx := context.Background()
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		q := randomQuery(rng, ds, tmin, tmax)
		want, err := partialRef.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("trial %d: %v (query %+v)", trial, err, q)
		}
		if !got.Partial || len(got.Missing) != 1 || got.Missing[0] != 2 {
			t.Fatalf("trial %d: partial=%v missing=%v, want partial with shard 2", trial, got.Partial, got.Missing)
		}
		compareShardedVsPublic(t, "one-down", 4, q, got, want)
	}
	if n := counters.ShardFailures.Load(); n < 3 {
		t.Fatalf("ShardFailures = %d, want >= 3", n)
	}
	if n := counters.PartialResponses.Load(); n != 12 {
		t.Fatalf("PartialResponses = %d, want 12", n)
	}
	if n := counters.ShardsShed.Load(); n == 0 {
		t.Fatal("expected the down shard to be shed before dispatch after the failure threshold")
	}
	st := c.Status()
	if st[2].State != "down" && st[2].State != "recovering" {
		t.Fatalf("shard 2 state = %q, want down", st[2].State)
	}

	// Lift the fault; after the probe interval the next query probes the
	// shard, restores it, and answers over all shards again.
	failpoint.Disable(site)
	time.Sleep(60 * time.Millisecond)
	q := randomQuery(rng, ds, tmin, tmax)
	want, err := fullRef.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatalf("post-recovery query still partial: %+v", got)
	}
	compareShardedVsPublic(t, "recovered", 4, q, got, want)
	if st := c.Status(); st[2].State != "ready" {
		t.Fatalf("shard 2 state = %q after recovery, want ready", st[2].State)
	}
}

// TestShardedHedging delays shard 1's first attempt far past the hedge
// timer and verifies the hedged retry wins without the query failing or
// degrading.
func TestShardedHedging(t *testing.T) {
	ds := testDataset(t)
	tmin, tmax := ds.Store.TimeRange()
	ref, err := pathhist.NewEngine(ds.G, copyStore(ds.Store), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.ServerCounters{}
	c, err := Build(ds.G, copyStore(ds.Store), Config{
		Shards:     4,
		Counters:   counters,
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	site := failpoint.ShardSlow + ".1"
	failpoint.Enable(site, failpoint.Injection{Delay: 300 * time.Millisecond, Times: 1})
	defer failpoint.Disable(site)

	rng := rand.New(rand.NewSource(11))
	q := randomQuery(rng, ds, tmin, tmax)
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || got.Restarts != 0 {
		t.Fatalf("hedged query degraded: %+v", got)
	}
	compareShardedVsPublic(t, "hedged", 4, q, got, want)
	if n := counters.HedgedDispatches.Load(); n < 1 {
		t.Fatalf("HedgedDispatches = %d, want >= 1", n)
	}
	if n := counters.HedgeWins.Load(); n < 1 {
		t.Fatalf("HedgeWins = %d, want >= 1", n)
	}
}

// TestShardedCoverageFloor verifies the 503 path: with a coverage floor of
// 1.0, losing any shard fails the query with ErrInsufficientCoverage.
func TestShardedCoverageFloor(t *testing.T) {
	ds := testDataset(t)
	tmin, tmax := ds.Store.TimeRange()
	c, err := Build(ds.G, copyStore(ds.Store), Config{
		Shards:        4,
		MinCoverage:   1.0,
		FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	site := failpoint.ShardDown + ".3"
	failpoint.Enable(site, failpoint.Injection{Err: errors.New("injected")})
	defer failpoint.Disable(site)

	rng := rand.New(rand.NewSource(5))
	q := randomQuery(rng, ds, tmin, tmax)
	if _, err := c.Query(context.Background(), q); !errors.Is(err, ErrInsufficientCoverage) {
		t.Fatalf("err = %v, want ErrInsufficientCoverage", err)
	}
}

// TestShardedIngestRouting verifies degraded shards are skipped by the
// round-robin ingest router, reroutes are counted, stale batches are
// rejected globally, and a fully unhealthy cluster refuses ingest.
func TestShardedIngestRouting(t *testing.T) {
	ds := testDataset(t)
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) < 6 {
		t.Skip("dataset has too few quiescent cuts")
	}
	base := cuts[len(cuts)-5]
	counters := &metrics.ServerCounters{}
	c, err := Build(ds.G, ds.Store.Slice(0, base), Config{Shards: 4, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A batch that starts inside the indexed range must be rejected before
	// any shard sees it.
	if _, _, err := c.Extend(context.Background(), ds.Store.Slice(0, 1)); err == nil {
		t.Fatal("stale batch accepted")
	}

	c.SetDegraded(2, true)
	bounds := append([]int{}, cuts[len(cuts)-4:]...)
	bounds = append(bounds, ds.Store.Len())
	before := make([]int, 4)
	for i := range before {
		before[i] = c.Engine(i).Trajectories()
	}
	for i := 0; i+1 < len(bounds); i++ {
		si, _, err := c.Extend(context.Background(), ds.Store.Slice(bounds[i], bounds[i+1]))
		if err != nil {
			t.Fatalf("extend batch %d: %v", i, err)
		}
		if si == 2 {
			t.Fatal("batch routed to degraded shard 2")
		}
	}
	if c.Engine(2).Trajectories() != before[2] {
		t.Fatal("degraded shard 2 grew")
	}
	if counters.IngestReroutes.Load() == 0 {
		t.Fatal("expected at least one ingest reroute")
	}
	for i := 0; i < 4; i++ {
		c.SetDegraded(i, true)
	}
	if _, _, err := c.Extend(context.Background(), ds.Store.Slice(0, 0)); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
	if _, err := c.RouteIngest(nil, func(int) error {
		t.Fatal("ingest function called with every shard degraded")
		return nil
	}); !errors.Is(err, ErrNoIngestShard) {
		t.Fatalf("err = %v, want ErrNoIngestShard", err)
	}
}
