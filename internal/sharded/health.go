package sharded

import (
	"sort"
	"sync"
	"time"
)

// State is a shard's health state. Transitions (driven by dispatch results
// and the serving layer's degraded latch):
//
//	Ready ──(FailThreshold consecutive failures)──▶ Down
//	Down ──(ProbeInterval elapsed, one query admitted)──▶ Recovering
//	Recovering ──(probe succeeds)──▶ Ready
//	Recovering ──(probe fails)──▶ Down (probe timer re-armed)
//	Ready ⇄ Degraded (serving layer latch; reads still dispatch, ingest
//	                  routes elsewhere)
type State int32

// The shard health states.
const (
	Ready State = iota
	Degraded
	Down
	Recovering
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// shardHealth is one shard's state machine. The zero value is Ready.
type shardHealth struct {
	mu          sync.Mutex
	state       State // Ready, Down or Recovering; Degraded is the latch below
	consecFails int
	probeAt     time.Time // when Down, the earliest next probe
	degraded    bool      // serving-layer read-only latch (orthogonal to state)
}

// admit decides whether a query dispatch may proceed, implementing the
// shed-before-dispatch policy: Ready (and Degraded — reads still work)
// shards always admit; a Down shard sheds until ProbeInterval has elapsed,
// then admits exactly one dispatch as the recovery probe (single-flight:
// the state moves to Recovering so concurrent queries keep shedding until
// the probe resolves).
func (h *shardHealth) admit(now time.Time) (ok, probe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case Down:
		if now.Before(h.probeAt) {
			return false, false
		}
		h.state = Recovering
		return true, true
	case Recovering:
		return false, false
	default:
		return true, false
	}
}

// participates reports whether the router should include the shard in a
// query's fan-out at all — the cheap pre-dispatch check that keeps a known
// down shard from costing every query a failed scatter and a restart.
func (h *shardHealth) participates(now time.Time) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case Down:
		return !now.Before(h.probeAt)
	case Recovering:
		return false
	default:
		return true
	}
}

// ingestable reports whether a batch may be routed to the shard: it must be
// fully healthy — not down (the write would be lost with the shard) and not
// degraded (its WAL already failed; it is read-only).
func (h *shardHealth) ingestable() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == Ready && !h.degraded
}

// success records a completed dispatch: failures reset, and a probe (or any
// success on a shard marked down between admit and completion) restores
// Ready.
func (h *shardHealth) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
	h.state = Ready
}

// failure records a failed dispatch. A failed probe sends the shard
// straight back to Down with the probe timer re-armed; otherwise the shard
// goes down after threshold consecutive failures.
func (h *shardHealth) failure(probe bool, threshold int, probeInterval time.Duration, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails++
	if probe || h.consecFails >= threshold {
		h.state = Down
		h.probeAt = now.Add(probeInterval)
	}
}

func (h *shardHealth) setDegraded(d bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.degraded = d
}

// status snapshots the externally visible state (folding the degraded latch
// over Ready) and the consecutive-failure count.
func (h *shardHealth) status() (State, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state
	if st == Ready && h.degraded {
		st = Degraded
	}
	return st, h.consecFails
}

// latencyRingSize is the per-shard latency history the p99 hedge delay is
// computed over.
const latencyRingSize = 128

// latencyRing records recent successful dispatch latencies for one shard.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyRingSize]time.Duration
	n   int // filled entries
	pos int // next write
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.pos] = d
	r.pos = (r.pos + 1) % latencyRingSize
	if r.n < latencyRingSize {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile recorded latency, or 0 when the ring has
// too little history to be meaningful.
func (r *latencyRing) p99() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 8 {
		return 0
	}
	tmp := make([]time.Duration, r.n)
	copy(tmp, r.buf[:r.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(r.n-1)*99/100]
}

// hedgeDelay is the delay before a dispatch launches its hedged second
// attempt: the replica's observed p99 when the ring has history, the
// configured default otherwise.
func (r *replica) hedgeDelay(fallback time.Duration) time.Duration {
	if d := r.lat.p99(); d > 0 {
		return d
	}
	return fallback
}
