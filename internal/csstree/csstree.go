// Package csstree implements the cache-sensitive search tree of Rao & Ross
// used by the paper as an append-only, pointer-free replacement for the
// temporal B+-tree forest (Section 4.3.1). Data is a sorted array; a
// directory of cache-line-sized nodes (8 int64 keys = 64 bytes) built
// bottom-up accelerates searches without storing pointers. Range sizes
// ("the size of a key range") are computed exactly in logarithmic time,
// which the paper exploits for the CSS-* cardinality estimator modes
// (Section 4.4).
package csstree

// fanout is the number of keys per directory node: one 64-byte cache line
// of int64 keys, as in the Rao & Ross design.
const fanout = 8

// Tree is a CSS-tree multimap over int64 keys. Keys must be inserted in
// non-decreasing order via Append (or supplied sorted to Build); Finish (or
// any search after appends) rebuilds the directory.
type Tree[V any] struct {
	keys   []int64
	vals   []V
	levels [][]int64 // levels[0] is closest to the data; each entry is the max key of a group below
	dirty  bool
}

// Build constructs a tree over sorted (keys, vals). It panics if the slices
// differ in length or keys are unsorted (a programming error).
func Build[V any](keys []int64, vals []V) *Tree[V] {
	if len(keys) != len(vals) {
		panic("csstree: keys/vals length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic("csstree: keys not sorted")
		}
	}
	t := &Tree[V]{keys: keys, vals: vals}
	t.rebuild()
	return t
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Append adds an entry whose key must be >= the current maximum (the
// append-only trade-off of Section 4.3.1). The directory is rebuilt lazily.
func (t *Tree[V]) Append(key int64, v V) {
	if n := len(t.keys); n > 0 && key < t.keys[n-1] {
		panic("csstree: Append with decreasing key")
	}
	t.keys = append(t.keys, key)
	t.vals = append(t.vals, v)
	t.dirty = true
}

// Finish rebuilds the directory after a batch of appends.
func (t *Tree[V]) Finish() { t.rebuild() }

func (t *Tree[V]) rebuild() {
	t.dirty = false
	t.levels = t.levels[:0]
	cur := t.keys
	for len(cur) > fanout {
		next := make([]int64, 0, (len(cur)+fanout-1)/fanout)
		for i := 0; i < len(cur); i += fanout {
			end := i + fanout
			if end > len(cur) {
				end = len(cur)
			}
			next = append(next, cur[end-1])
		}
		t.levels = append(t.levels, next)
		cur = next
	}
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return len(t.keys) }

// Export returns the tree's sorted key and value arrays — the freeze export
// counterpart of bptree.Export. The returned slices alias the tree's
// internal storage and must be treated as read-only.
func (t *Tree[V]) Export() ([]int64, []V) { return t.keys, t.vals }

// Key returns the i-th key in sorted order.
func (t *Tree[V]) Key(i int) int64 { return t.keys[i] }

// Val returns the i-th value in sorted order.
func (t *Tree[V]) Val(i int) V { return t.vals[i] }

// LowerBound returns the first index whose key is >= key (Len() if none).
func (t *Tree[V]) LowerBound(key int64) int {
	if t.dirty {
		t.rebuild()
	}
	n := len(t.keys)
	if n == 0 {
		return 0
	}
	// Descend the directory from the top. At each level, group g spans
	// entries [g*fanout, (g+1)*fanout) of the level below; levels[l][g] is
	// the max key under that group.
	g := 0
	for l := len(t.levels) - 1; l >= 0; l-- {
		level := t.levels[l]
		lo := g * fanout
		hi := lo + fanout
		if hi > len(level) {
			hi = len(level)
		}
		g = hi - 1 // default: rightmost child if all maxima < key
		for i := lo; i < hi; i++ {
			if level[i] >= key {
				g = i
				break
			}
		}
	}
	lo := g * fanout
	hi := lo + fanout
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		if t.keys[i] >= key {
			return i
		}
	}
	return n
}

// UpperBound returns the first index whose key is > key.
func (t *Tree[V]) UpperBound(key int64) int {
	if key == maxInt64 {
		return len(t.keys)
	}
	return t.LowerBound(key + 1)
}

const maxInt64 = 1<<63 - 1

// CountRange returns, exactly and in O(log n), the number of entries with
// lo <= key < hi — the fast range-size computation of Section 4.3.1.
func (t *Tree[V]) CountRange(lo, hi int64) int {
	if hi <= lo {
		return 0
	}
	return t.LowerBound(hi) - t.LowerBound(lo)
}

// AscendRange calls fn for entries with lo <= key < hi in ascending order;
// fn returning false stops the scan.
func (t *Tree[V]) AscendRange(lo, hi int64, fn func(key int64, v V) bool) {
	for i := t.LowerBound(lo); i < len(t.keys) && t.keys[i] < hi; i++ {
		if !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// DescendRange calls fn for entries with lo <= key < hi in descending order.
func (t *Tree[V]) DescendRange(lo, hi int64, fn func(key int64, v V) bool) {
	for i := t.LowerBound(hi) - 1; i >= 0 && t.keys[i] >= lo; i-- {
		if !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// MinKey returns the smallest key (ok=false when empty).
func (t *Tree[V]) MinKey() (int64, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	return t.keys[0], true
}

// MaxKey returns the largest key (ok=false when empty).
func (t *Tree[V]) MaxKey() (int64, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	return t.keys[len(t.keys)-1], true
}

// SizeBytes models the memory footprint: sorted key and payload arrays plus
// the pointer-free directory. This is the "low memory overhead" the paper
// credits CSS-trees with (Section 4.3.1).
func (t *Tree[V]) SizeBytes(payloadBytes int) int {
	sz := len(t.keys)*(8+payloadBytes) + 48 // arrays + struct header
	for _, l := range t.levels {
		sz += len(l) * 8
	}
	return sz
}
