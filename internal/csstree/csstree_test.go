package csstree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New[int]()
	tr.Finish()
	if tr.Len() != 0 || tr.LowerBound(5) != 0 || tr.CountRange(0, 10) != 0 {
		t.Error("empty tree misbehaves")
	}
	if _, ok := tr.MinKey(); ok {
		t.Error("MinKey on empty")
	}
	if _, ok := tr.MaxKey(); ok {
		t.Error("MaxKey on empty")
	}
}

func TestSmallSorted(t *testing.T) {
	keys := []int64{1, 3, 3, 5, 9}
	vals := []int{10, 30, 31, 50, 90}
	tr := Build(keys, vals)
	cases := []struct {
		key  int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {5, 3}, {6, 4}, {9, 4}, {10, 5},
	}
	for _, c := range cases {
		if got := tr.LowerBound(c.key); got != c.want {
			t.Errorf("LowerBound(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	if got := tr.UpperBound(3); got != 3 {
		t.Errorf("UpperBound(3) = %d, want 3", got)
	}
	if got := tr.CountRange(3, 6); got != 3 {
		t.Errorf("CountRange(3,6) = %d, want 3", got)
	}
	if k, _ := tr.MinKey(); k != 1 {
		t.Error("MinKey")
	}
	if k, _ := tr.MaxKey(); k != 9 {
		t.Error("MaxKey")
	}
	if tr.Key(2) != 3 || tr.Val(2) != 31 {
		t.Error("Key/Val accessor")
	}
}

func TestAppendAndLazyRebuild(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Append(int64(i/3), i)
	}
	// Search without explicit Finish must still be correct (lazy rebuild).
	if got := tr.LowerBound(100); got != 300 {
		t.Errorf("LowerBound(100) = %d, want 300", got)
	}
	tr.Append(999, -1)
	tr.Finish()
	if got := tr.CountRange(999, 1000); got != 1 {
		t.Errorf("CountRange tail = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("decreasing Append should panic")
		}
	}()
	tr.Append(0, 0)
}

func TestScans(t *testing.T) {
	var keys []int64
	var vals []int
	for i := 0; i < 5000; i++ {
		keys = append(keys, int64(i/7))
		vals = append(vals, i)
	}
	tr := Build(keys, vals)
	var got []int64
	tr.AscendRange(100, 110, func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 70 {
		t.Fatalf("ascend count = %d, want 70", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("ascend not sorted")
		}
	}
	var desc []int64
	tr.DescendRange(100, 110, func(k int64, v int) bool {
		desc = append(desc, k)
		return true
	})
	if len(desc) != 70 {
		t.Fatalf("descend count = %d", len(desc))
	}
	for i := range desc {
		if desc[i] != got[len(got)-1-i] {
			t.Fatal("descend is not the reverse of ascend")
		}
	}
	// Early stop.
	n := 0
	tr.AscendRange(0, 1000, func(int64, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestLowerBoundAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(3000)
		keys := make([]int64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(500))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr := Build(keys, vals)
		for q := 0; q < 50; q++ {
			key := int64(rng.Intn(520) - 10)
			want := sort.Search(n, func(i int) bool { return keys[i] >= key })
			if got := tr.LowerBound(key); got != want {
				t.Fatalf("trial %d: LowerBound(%d) = %d, want %d (n=%d)", trial, key, got, want, n)
			}
		}
	}
}

func TestCountRangeQuick(t *testing.T) {
	f := func(raw []uint8, loRaw, spanRaw uint8) bool {
		keys := make([]int64, len(raw))
		vals := make([]int, len(raw))
		for i, b := range raw {
			keys[i] = int64(b)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr := Build(keys, vals)
		lo := int64(loRaw)
		hi := lo + int64(spanRaw)
		want := 0
		for _, k := range keys {
			if k >= lo && k < hi {
				want++
			}
		}
		return tr.CountRange(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted Build should panic")
		}
	}()
	Build([]int64{3, 1}, []int{0, 0})
}

func TestSizeBytesSmallerThanBTreeStyle(t *testing.T) {
	var keys []int64
	var vals [][4]int64 // 32-byte payload
	for i := 0; i < 100000; i++ {
		keys = append(keys, int64(i))
		vals = append(vals, [4]int64{})
	}
	tr := Build(keys, vals)
	sz := tr.SizeBytes(32)
	// Pointer-free: close to raw data size (40 B/entry) plus a small
	// directory (< 20% overhead).
	if sz < 100000*40 || sz > 100000*48 {
		t.Errorf("SizeBytes = %d outside plausible range", sz)
	}
}
