package hist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperSection23Example(t *testing.T) {
	// Q = spq(<A,B,E>, [0,15), u=u1, 2) yields travel times {11, 10}:
	// H = {[10,11): 1; [11,12): 1} with h = 1.
	h := FromSamples([]int{11, 10}, 1)
	if h.Count(10) != 1 || h.Count(11) != 1 || h.Total() != 2 {
		t.Errorf("H = %v %v total %v", h.Count(10), h.Count(11), h.Total())
	}
	// Split variant: H1 = {[6,7):2; [7,8):1}, H2 = {[4,5):2; [5,6):1},
	// convolution H = {[10,11):4; [11,12):4; [12,13):1}.
	h1 := FromSamples([]int{6, 6, 7}, 1)
	h2 := FromSamples([]int{4, 4, 5}, 1)
	conv := h1.Convolve(h2)
	if conv.Count(10) != 4 || conv.Count(11) != 4 || conv.Count(12) != 1 {
		t.Errorf("convolution = %v,%v,%v; want 4,4,1",
			conv.Count(10), conv.Count(11), conv.Count(12))
	}
	if conv.Total() != 9 {
		t.Errorf("convolution total = %v, want 9", conv.Total())
	}
	if conv.Min() != 10 || conv.Max() != 12 {
		t.Errorf("convolution min/max = %d/%d, want 10/12", conv.Min(), conv.Max())
	}
	if conv.NumSamples() != 9 {
		t.Errorf("NumSamples = %d", conv.NumSamples())
	}
}

func TestFromSamplesBasics(t *testing.T) {
	if FromSamples(nil, 10) != nil {
		t.Error("empty samples should give nil")
	}
	h := FromSamples([]int{95, 103, 104, 119}, 10)
	if h.BucketWidth() != 10 {
		t.Error("width")
	}
	if h.Min() != 95 || h.Max() != 119 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Count(90) != 1 || h.Count(100) != 2 || h.Count(110) != 1 {
		t.Errorf("bucket counts wrong: %v %v %v", h.Count(90), h.Count(100), h.Count(110))
	}
	if h.Count(0) != 0 || h.Count(10000) != 0 {
		t.Error("out-of-range count should be 0")
	}
	// Mean of bucket midpoints: (95*1 + 105*2 + 115*1)/4 = 105.
	if got := h.Mean(); got != 105 {
		t.Errorf("Mean = %v, want 105", got)
	}
}

func TestBProportional(t *testing.T) {
	h := FromSamples([]int{10, 10, 10, 10}, 10) // one bucket [10,20) with mass 4
	if got := h.B(10, 20); got != 4 {
		t.Errorf("B full bucket = %v", got)
	}
	if got := h.B(10, 15); got != 2 {
		t.Errorf("B half bucket = %v", got)
	}
	if got := h.B(0, 100); got != 4 {
		t.Errorf("B superset = %v", got)
	}
	if got := h.B(20, 30); got != 0 {
		t.Errorf("B disjoint = %v", got)
	}
	if got := h.B(15, 15); got != 0 {
		t.Errorf("B empty range = %v", got)
	}
}

func TestConvolveIdentity(t *testing.T) {
	h := FromSamples([]int{5, 7}, 1)
	if got := h.Convolve(nil); got != h {
		t.Error("Convolve(nil) should return receiver")
	}
	var nilH *Histogram
	if got := nilH.Convolve(h); got != h {
		t.Error("nil.Convolve(h) should return h")
	}
}

func TestConvolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n1, n2 := 1+rng.Intn(20), 1+rng.Intn(20)
		xs := make([]int, n1)
		ys := make([]int, n2)
		for i := range xs {
			xs[i] = rng.Intn(300)
		}
		for i := range ys {
			ys[i] = rng.Intn(300)
		}
		h := 5
		conv := FromSamples(xs, h).Convolve(FromSamples(ys, h))
		// Brute force: all pairwise bucket-index sums.
		want := map[int]float64{}
		for _, x := range xs {
			for _, y := range ys {
				want[x/h+y/h]++
			}
		}
		for b, w := range want {
			if got := conv.Count(b * h); got != w {
				t.Fatalf("trial %d: bucket %d = %v, want %v", trial, b, got, w)
			}
		}
		if conv.Total() != float64(n1*n2) {
			t.Fatalf("total = %v", conv.Total())
		}
	}
}

func TestQuantileAndCDF(t *testing.T) {
	h := FromSamples([]int{10, 20, 30, 40}, 10)
	if got := h.CDF(50); got != 1 {
		t.Errorf("CDF(50) = %v", got)
	}
	if got := h.CDF(10); got != 0.25*0 { // [10,20) bucket mass not yet included at x=10
		t.Errorf("CDF(10) = %v", got)
	}
	med := h.Quantile(0.5)
	if med < 20 || med > 30 {
		t.Errorf("median = %v", med)
	}
	if q := h.Quantile(1.0); q < 40 || q > 50 {
		t.Errorf("q100 = %v", q)
	}
}

func TestLogLikelihood(t *testing.T) {
	// Concentrated histogram: high likelihood inside, floor outside.
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = 100 + i%10
	}
	h := FromSamples(xs, 10)
	inside := h.LogLikelihood(105, 0.99, 0, 3600)
	outside := h.LogLikelihood(1000, 0.99, 0, 3600)
	if inside <= outside {
		t.Errorf("inside (%v) should beat outside (%v)", inside, outside)
	}
	// The smoothing floor: (1-gamma)*U never lets the density hit zero.
	wantFloor := math.Log(0.01 / 3600)
	if math.Abs(outside-wantFloor) > 1e-9 {
		t.Errorf("outside = %v, want floor %v", outside, wantFloor)
	}
	// In-bucket density: all mass is in [100,110), so mass fraction is 1.
	wantInside := math.Log(0.99*(1.0/10) + 0.01/3600)
	if math.Abs(inside-wantInside) > 1e-9 {
		t.Errorf("inside = %v, want %v", inside, wantInside)
	}
}

func TestConvolutionProperty(t *testing.T) {
	// Mean of convolution = sum of means; min/max add.
	f := func(raw1, raw2 []uint8) bool {
		if len(raw1) == 0 || len(raw2) == 0 {
			return true
		}
		xs := make([]int, len(raw1))
		ys := make([]int, len(raw2))
		for i, b := range raw1 {
			xs[i] = int(b)
		}
		for i, b := range raw2 {
			ys[i] = int(b)
		}
		h1, h2 := FromSamples(xs, 1), FromSamples(ys, 1)
		conv := h1.Convolve(h2)
		if conv.Min() != h1.Min()+h2.Min() || conv.Max() != h1.Max()+h2.Max() {
			return false
		}
		// With h=1 bucket means are exact up to the +0.5 midpoint shift.
		want := h1.Mean() + h2.Mean() - 0.5
		return math.Abs(conv.Mean()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTodHistogram(t *testing.T) {
	h := NewTod(900) // 96 15-minute buckets, as in the paper's intro
	base := int64(1370304000)
	for i := 0; i < 10; i++ {
		h.Add(base + 8*3600)
	}
	for i := 0; i < 5; i++ {
		h.Add(base + 20*3600)
	}
	if h.Total() != 15 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.MassRange(8*3600, 8*3600+900); got != 10 {
		t.Errorf("morning bucket = %v", got)
	}
	if got := h.MassRange(0, 86400); got != 15 {
		t.Errorf("full day = %v", got)
	}
	if got := h.MassRange(8*3600, 8*3600+450); got != 5 {
		t.Errorf("half bucket = %v, want 5", got)
	}
	// Wrapping range 23:00 -> 09:00 catches the morning mass only.
	if got := h.MassRange(23*3600, 9*3600); got != 10 {
		t.Errorf("wrapped = %v, want 10", got)
	}
	// Negative timestamps land on a valid bucket.
	h.Add(-1)
	if h.Total() != 16 {
		t.Error("negative timestamp not recorded")
	}
	if h.SizeBytes() < 96*4 {
		t.Errorf("SizeBytes = %d", h.SizeBytes())
	}
}

func TestTodHistogramWidths(t *testing.T) {
	for _, w := range []int{60, 300, 600} {
		h := NewTod(w)
		if len(h.counts) != 86400/w {
			t.Errorf("width %d: %d buckets", w, len(h.counts))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("bad width should panic")
		}
	}()
	NewTod(7)
}
