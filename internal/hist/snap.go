// Snapshot serialization of the time-of-day histograms (DESIGN.md §10):
// bucket width, total, and the raw integer bucket counts. Under a
// zero-copy reader (DESIGN.md §15) the counts column views the read-only
// mapping, so a decoded histogram must never be mutated in place — the
// accumulation paths (compaction's per-run merges) already Clone first,
// which detaches the counts to the heap.
package hist

import (
	"fmt"

	"pathhist/internal/snapio"
)

// EncodeSnap appends the histogram to the open snapshot section.
func (h *TodHistogram) EncodeSnap(w *snapio.Writer) {
	w.U64(uint64(h.width))
	w.I64(h.total)
	w.U32s(h.counts)
}

// DecodeSnapTod reads a histogram written by EncodeSnap, validating the
// NewTod width invariant and the bucket-count/width relationship.
func DecodeSnapTod(r *snapio.Reader) (*TodHistogram, error) {
	h := &TodHistogram{}
	h.width = r.Int()
	h.total = r.I64()
	h.counts = r.U32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if h.width <= 0 || DaySeconds%h.width != 0 || len(h.counts) != DaySeconds/h.width {
		return nil, fmt.Errorf("hist: inconsistent snapshot tod histogram: width=%d buckets=%d", h.width, len(h.counts))
	}
	return h, nil
}
