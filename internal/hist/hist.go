// Package hist implements the travel-time histograms of the paper: fixed
// bucket-width histograms built from traversal-time samples (Section 2.3),
// the discrete convolution operator * that combines sub-path histograms
// into a full-path histogram, the bucket-mass function B(H, [a,b)) used both
// by the log-likelihood metric (Section 5.3.3) and the cardinality
// estimator's formula (2), and the per-segment time-of-day histograms of
// Section 4.4.
package hist

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a travel-time histogram with integer bucket width h seconds:
// bucket i covers travel times [i*h, (i+1)*h). Counts are float64 because
// convolution multiplies them.
type Histogram struct {
	h      int // bucket width in seconds
	offset int // index of the first stored bucket
	counts []float64
	total  float64
	// min/max are the exact extreme travel times represented (sample
	// extremes for sample-built histograms, summed extremes after
	// convolution). They drive the shift-and-enlarge interval adaptation
	// (Section 4.2).
	min, max int
	n        int // number of underlying samples (product after convolution)
}

// histPool recycles Histogram structs together with their count buffers so
// that steady-state query processing reuses instead of reallocating them.
// Only histograms that are provably unreachable go back: the query engine
// recycles its intermediate convolution results, nothing else (sub-query
// histograms are shared through the sub-result cache and must stay live).
var histPool = sync.Pool{New: func() any { return new(Histogram) }}

// newHist returns a histogram with a zeroed count buffer of length n,
// reusing a recycled histogram when one fits.
func newHist(h, offset, n int) *Histogram {
	hg := histPool.Get().(*Histogram)
	if cap(hg.counts) >= n {
		hg.counts = hg.counts[:n]
		for i := range hg.counts {
			hg.counts[i] = 0
		}
	} else {
		hg.counts = make([]float64, n)
	}
	hg.h = h
	hg.offset = offset
	hg.total = 0
	hg.min, hg.max, hg.n = 0, 0, 0
	return hg
}

// Recycle returns the histogram to the package pool. It must only be called
// on histograms no other code can reach — in practice the query engine's
// intermediate convolution results. The histogram is unusable afterwards.
func (hg *Histogram) Recycle() {
	if hg == nil {
		return
	}
	hg.counts = hg.counts[:0]
	hg.total = 0
	histPool.Put(hg)
}

// FromSamples builds a histogram with bucket width h from travel-time
// samples in seconds. It returns nil for an empty sample set.
func FromSamples(xs []int, h int) *Histogram {
	if len(xs) == 0 {
		return nil
	}
	if h <= 0 {
		panic(fmt.Sprintf("hist: bucket width %d", h))
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	lo, hi := min/h, max/h
	hg := newHist(h, lo, hi-lo+1)
	hg.min, hg.max, hg.n = min, max, len(xs)
	for _, x := range xs {
		hg.counts[x/h-lo]++
		hg.total++
	}
	return hg
}

// BucketWidth returns h.
func (hg *Histogram) BucketWidth() int { return hg.h }

// NumSamples returns the number of samples the histogram was built from
// (the product of sample counts after convolution).
func (hg *Histogram) NumSamples() int { return hg.n }

// Total returns the total mass.
func (hg *Histogram) Total() float64 { return hg.total }

// Min returns the smallest represented travel time in seconds.
func (hg *Histogram) Min() int { return hg.min }

// Max returns the largest represented travel time in seconds.
func (hg *Histogram) Max() int { return hg.max }

// Count returns the mass of the bucket covering second x.
func (hg *Histogram) Count(x int) float64 {
	i := x/hg.h - hg.offset
	if i < 0 || i >= len(hg.counts) {
		return 0
	}
	return hg.counts[i]
}

// Mean returns the mass-weighted mean of bucket midpoints.
func (hg *Histogram) Mean() float64 {
	if hg.total == 0 {
		return 0
	}
	var s float64
	for i, c := range hg.counts {
		mid := (float64(hg.offset+i) + 0.5) * float64(hg.h)
		s += c * mid
	}
	return s / hg.total
}

// B returns the histogram mass falling in the travel-time range [a, b)
// seconds, counting partially overlapped buckets proportionally — the
// B(H, [ts, te)) of the paper's formula (2) and Section 5.3.3.
func (hg *Histogram) B(a, b int) float64 {
	if b <= a || hg.total == 0 {
		return 0
	}
	var s float64
	for i, c := range hg.counts {
		if c == 0 {
			continue
		}
		lo := (hg.offset + i) * hg.h
		hi := lo + hg.h
		ovLo, ovHi := lo, hi
		if a > ovLo {
			ovLo = a
		}
		if b < ovHi {
			ovHi = b
		}
		if ovHi > ovLo {
			s += c * float64(ovHi-ovLo) / float64(hg.h)
		}
	}
	return s
}

// Convolve returns H = hg * other, the discrete convolution of Section 2.3:
// the distribution of the sum of a travel time drawn from hg and one drawn
// from other. Bucket widths must match. Either operand being nil yields the
// other (identity for the fold in Procedure 6).
func (hg *Histogram) Convolve(other *Histogram) *Histogram {
	if hg == nil {
		return other
	}
	if other == nil {
		return hg
	}
	if hg.h != other.h {
		panic(fmt.Sprintf("hist: convolving width %d with %d", hg.h, other.h))
	}
	out := newHist(hg.h, hg.offset+other.offset, len(hg.counts)+len(other.counts)-1)
	out.min = hg.min + other.min
	out.max = hg.max + other.max
	out.n = hg.n * other.n
	for i, a := range hg.counts {
		if a == 0 {
			continue
		}
		for j, b := range other.counts {
			if b == 0 {
				continue
			}
			out.counts[i+j] += a * b
		}
	}
	for _, c := range out.counts {
		out.total += c
	}
	return out
}

// Quantile returns the smallest travel time x (bucket upper midpoint
// resolution) such that at least fraction q of the mass lies at or below x.
func (hg *Histogram) Quantile(q float64) float64 {
	if hg.total == 0 {
		return 0
	}
	target := q * hg.total
	var acc float64
	for i, c := range hg.counts {
		acc += c
		if acc >= target {
			// Linear interpolation within the bucket.
			lo := float64((hg.offset + i) * hg.h)
			frac := 1.0
			if c > 0 {
				frac = (target - (acc - c)) / c
			}
			return lo + frac*float64(hg.h)
		}
	}
	return float64((hg.offset + len(hg.counts)) * hg.h)
}

// CDF returns the fraction of mass at or below x seconds (proportional
// within the containing bucket) — used by the routing example to compute
// deadline-arrival probabilities.
func (hg *Histogram) CDF(x int) float64 {
	if hg.total == 0 {
		return 0
	}
	return hg.B(hg.offset*hg.h, x) / hg.total
}

// LogLikelihood returns log pH(x) under the paper's smoothed density
// (Section 5.3.3): pH(x) = gamma*f(x,H) + (1-gamma)*U(x), where f is the
// per-second density of the bucket containing x and U the uniform density
// over [tmin, tmax).
func (hg *Histogram) LogLikelihood(x int, gamma float64, tmin, tmax int) float64 {
	u := 1.0 / float64(tmax-tmin)
	var f float64
	if hg.total > 0 {
		b := x / hg.h * hg.h
		f = hg.B(b, b+hg.h) / hg.total / float64(hg.h)
	}
	return math.Log(gamma*f + (1-gamma)*u)
}

// SizeBytes models the memory footprint of the histogram.
func (hg *Histogram) SizeBytes() int {
	return 48 + len(hg.counts)*8
}

// DaySeconds is the length of a day in seconds.
const DaySeconds = 86400

// TodHistogram is a per-segment time-of-day histogram H_e counting segment
// entry events per time-of-day bucket; it supplies the selectivity estimate
// of formula (2) in Section 4.4 and the memory trade-off of Figure 10b.
type TodHistogram struct {
	width  int // bucket width in seconds
	counts []uint32
	total  int64
}

// NewTod returns a time-of-day histogram with the given bucket width in
// seconds (must divide 86400).
func NewTod(width int) *TodHistogram {
	if width <= 0 || DaySeconds%width != 0 {
		panic(fmt.Sprintf("hist: time-of-day bucket width %d", width))
	}
	return &TodHistogram{width: width, counts: make([]uint32, DaySeconds/width)}
}

// Add records an entry event at the given unix timestamp.
func (h *TodHistogram) Add(t int64) {
	tod := t % DaySeconds
	if tod < 0 {
		tod += DaySeconds
	}
	h.counts[int(tod)/h.width]++
	h.total++
}

// Total returns the total number of recorded events.
func (h *TodHistogram) Total() int64 { return h.total }

// MassRange returns the (proportionally interpolated) number of events with
// time-of-day in [s, e) seconds; the range may wrap midnight (s > e) and is
// full-day when e-s >= 86400.
func (h *TodHistogram) MassRange(s, e int64) float64 {
	if e-s >= DaySeconds {
		return float64(h.total)
	}
	s = ((s % DaySeconds) + DaySeconds) % DaySeconds
	e = ((e % DaySeconds) + DaySeconds) % DaySeconds
	if s == e {
		return 0
	}
	if s < e {
		return h.massLinear(s, e)
	}
	return h.massLinear(s, DaySeconds) + h.massLinear(0, e)
}

func (h *TodHistogram) massLinear(s, e int64) float64 {
	var sum float64
	w := int64(h.width)
	for b := s / w; b*w < e; b++ {
		lo, hi := b*w, (b+1)*w
		ovLo, ovHi := lo, hi
		if s > ovLo {
			ovLo = s
		}
		if e < ovHi {
			ovHi = e
		}
		if ovHi > ovLo {
			sum += float64(h.counts[b]) * float64(ovHi-ovLo) / float64(w)
		}
	}
	return sum
}

// Width returns the bucket width in seconds.
func (h *TodHistogram) Width() int { return h.width }

// Clone returns an independent copy of the histogram.
func (h *TodHistogram) Clone() *TodHistogram {
	out := &TodHistogram{width: h.width, counts: make([]uint32, len(h.counts)), total: h.total}
	copy(out.counts, h.counts)
	return out
}

// AddAll merges another histogram's counts into the receiver. Bucket widths
// must match. Counts are integers, so merging per-partition histograms is
// exactly the histogram a single build over the union would have produced —
// the property partition compaction relies on.
func (h *TodHistogram) AddAll(o *TodHistogram) {
	if o == nil {
		return
	}
	if o.width != h.width {
		panic(fmt.Sprintf("hist: merging time-of-day widths %d and %d", h.width, o.width))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// SizeBytes models the memory footprint (Figure 10b).
func (h *TodHistogram) SizeBytes() int {
	return 32 + len(h.counts)*4
}
