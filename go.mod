module pathhist

go 1.24
