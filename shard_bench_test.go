// Shard-scaling benchmarks live in an external test package: the runner in
// internal/sharded imports the public pathhist API, which the in-package
// bench_test.go (package pathhist) could not import back without a cycle.
package pathhist_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pathhist"
	"pathhist/internal/metrics"
	"pathhist/internal/sharded"
	"pathhist/internal/workload"
)

var shardBenchOnce struct {
	sync.Once
	ds *workload.Dataset
	qs []pathhist.Query
}

func shardBenchEnv(b *testing.B) (*workload.Dataset, []pathhist.Query) {
	b.Helper()
	shardBenchOnce.Do(func() {
		ds := workload.BuildDataset(workload.SmallConfig())
		ds.Store.SortByStart()
		var qs []pathhist.Query
		for _, q := range ds.MakeQueries(0.05, 5, ds.Cfg.Seed+1) {
			qs = append(qs, pathhist.Query{Path: pathhist.Path(q.Path), Periodic: true, Around: q.T0, Beta: 20})
		}
		shardBenchOnce.ds, shardBenchOnce.qs = ds, qs
	})
	return shardBenchOnce.ds, shardBenchOnce.qs
}

// BenchmarkShardScaling is the PR 9 scaling experiment: one sub-benchmark
// per shard count, each building a cluster over the base half, answering
// the query set through the scatter-gather router, and streaming the tail
// in as concurrently-ingested quiescent batches. The reported metrics are
// the experiment's columns; ns/op tracks the whole cycle.
func BenchmarkShardScaling(b *testing.B) {
	ds, qs := shardBenchEnv(b)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) {
			var row sharded.ShardScalingRow
			for i := 0; i < b.N; i++ {
				rows, err := sharded.RunShardScaling(ds.G, ds.Store, qs, []int{n}, 12)
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.BuildMs, "build-ms")
			b.ReportMetric(row.IndexMiB, "index-MiB")
			b.ReportMetric(row.QueryMsPerOp, "query-ms")
			b.ReportMetric(row.IngestTrajsPerSec, "trajs/s")
			b.ReportMetric(row.IngestBatchesPerSec, "batches/s")
		})
	}
}

// BenchmarkReplicaServing is the PR 10 replica-set experiment: the same
// two-shard cluster served with one query engine per shard and then with
// two replicas sharing each shard's published snapshot. Hedged retries fire
// off each replica's own p99, so the replicas2 run also measures how often
// a hedge lands on the sibling replica and wins. benchrecord derives
// replica2_qps_vs_replica1 and replica_hedge_win_rate from the reported
// metrics.
func BenchmarkReplicaServing(b *testing.B) {
	ds, qs := shardBenchEnv(b)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("replicas%d", k), func(b *testing.B) {
			counters := &metrics.ServerCounters{}
			c, err := sharded.Build(ds.G, ds.Store.Slice(0, ds.Store.Len()), sharded.Config{
				Shards:           2,
				ReplicasPerShard: k,
				Counters:         counters,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := qs[i%len(qs)]
					i++
					if _, err := c.Query(ctx, q); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if sec := time.Since(start).Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "qps")
			}
			if hd := counters.HedgedDispatches.Load(); hd > 0 {
				b.ReportMetric(float64(counters.HedgeWins.Load())/float64(hd), "hedge-win-rate")
				b.ReportMetric(float64(counters.CrossReplicaHedges.Load())/float64(hd), "cross-replica-rate")
			}
		})
	}
}
