package pathhist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pathhist/internal/query"
	"pathhist/internal/snt"
)

// Restart persistence (DESIGN.md §10). An Engine can write its currently
// published index snapshot — every structure the serving path reads, plus
// the epoch it was published as — to a versioned, checksummed, mmap-friendly
// binary format, and a new process can restore a serving-ready Engine from
// those bytes without replaying the build pipeline. The snapshot pairs with
// the dataset's network.bin: the road network is loaded separately and the
// snapshot refuses to load against a different network.

// SnapshotFileName is the canonical snapshot file name inside a snapshot
// directory (cmd/ttserve's -snapshot-dir writes it, -load-snapshot and
// LoadSnapshotFile read it).
const SnapshotFileName = "snapshot.snt"

// SnapshotStats reports one written snapshot: its size and the index epoch
// it captured.
type SnapshotStats struct {
	Bytes int64
	Epoch uint64
}

// Snapshot writes the engine's currently published index snapshot and epoch
// to w. The captured pair is one consistent publication: concurrent
// queries, Extends and Compacts are unaffected (the index is immutable; a
// snapshot simply pins one epoch), so Snapshot is safe to call at any time
// on a serving engine.
func (e *Engine) Snapshot(w io.Writer) (SnapshotStats, error) {
	ix, epoch := e.qe.Snapshot()
	n, err := ix.WriteSnapshot(w, epoch)
	return SnapshotStats{Bytes: n, Epoch: epoch}, err
}

// SnapshotFile writes the snapshot to path atomically: the bytes go to a
// temporary file in the same directory, which is fsynced and then renamed
// over the target (with a directory fsync), so a crash mid-write can never
// leave a half-written file where a later load would look for a snapshot —
// either the old file survives or the new one is complete.
func (e *Engine) SnapshotFile(path string) (SnapshotStats, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return SnapshotStats{}, fmt.Errorf("pathhist: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever touched by the final rename.
	fail := func(err error) (SnapshotStats, error) {
		tmp.Close()
		os.Remove(tmpName)
		return SnapshotStats{}, err
	}
	st, err := e.Snapshot(tmp)
	if err != nil {
		return fail(fmt.Errorf("pathhist: writing snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pathhist: syncing snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("pathhist: closing snapshot: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return SnapshotStats{}, fmt.Errorf("pathhist: publishing snapshot: %w", err)
	}
	// Persist the rename itself: fsync the directory so the publication
	// survives a crash right after SnapshotFile returns.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return st, nil
}

// LoadSnapshot restores an Engine from a snapshot written by Snapshot,
// against the same road network it was written with. The restored engine
// republishes the snapshot's epoch, so epoch-stamped observability (and any
// client correlating epochs across the restart) stays consistent; query
// results are bit-identical to the engine that wrote the snapshot. The
// Options play the same role as in NewEngine — partitioning, estimator,
// caches, compaction policy are serving-time choices, not part of the
// persisted index — and the cardinality estimator is rebuilt against the
// restored index. Loading fails closed on any corruption (see
// snt.ReadSnapshot); nothing is partially served.
func LoadSnapshot(g *Graph, r io.Reader, opts Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("pathhist: nil graph")
	}
	ix, epoch, err := snt.ReadSnapshot(g, r)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), epoch)}, nil
}

// LoadSnapshotFile restores an Engine from a snapshot file: one stat-sized
// read, then sections decode straight out of that buffer.
func LoadSnapshotFile(g *Graph, path string, opts Options) (*Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("pathhist: nil graph")
	}
	ix, epoch, err := snt.ReadSnapshotBytes(g, data)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), epoch)}, nil
}
