package pathhist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pathhist/internal/failpoint"
	"pathhist/internal/query"
	"pathhist/internal/snapio"
	"pathhist/internal/snt"
)

// Failpoint sites on the snapshot I/O path (internal/failpoint). Each sits
// immediately before the real syscall it stands in for, so an injected error
// exercises exactly the cleanup that syscall's failure would.
const (
	// FailpointSnapshotWrite fires before the snapshot bytes are written to
	// the temp file.
	FailpointSnapshotWrite = "snapshot.write"
	// FailpointSnapshotSync fires before the temp file is fsynced.
	FailpointSnapshotSync = "snapshot.sync"
	// FailpointSnapshotRename fires before the temp file is renamed over
	// the target.
	FailpointSnapshotRename = "snapshot.rename"
	// FailpointSnapshotDirSync fires before the directory fsync that
	// persists the rename.
	FailpointSnapshotDirSync = "snapshot.dirsync"
	// FailpointSnapshotLoad fires before a snapshot file is read back.
	FailpointSnapshotLoad = "snapshot.load"
)

// syncDir persists a just-completed rename in dir: without the directory
// fsync the new directory entry may not survive a crash even though the
// file's bytes would. Failure is reported, not swallowed — the caller's
// snapshot exists but its publication is not yet crash-durable, and pruning
// or WAL truncation must not proceed on that assumption.
func syncDir(dir string) error {
	if err := failpoint.Inject(FailpointSnapshotDirSync); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Restart persistence (DESIGN.md §10). An Engine can write its currently
// published index snapshot — every structure the serving path reads, plus
// the epoch it was published as — to a versioned, checksummed, mmap-friendly
// binary format, and a new process can restore a serving-ready Engine from
// those bytes without replaying the build pipeline. The snapshot pairs with
// the dataset's network.bin: the road network is loaded separately and the
// snapshot refuses to load against a different network.

// SnapshotFileName is the legacy single-snapshot file name inside a
// snapshot directory. SnapshotFileIn now writes epoch-named files (see
// SnapshotName) so several generations can be retained; FindLatestSnapshot
// still recognises this name so directories written by older builds keep
// loading.
const SnapshotFileName = "snapshot.snt"

// SnapshotStats reports one written snapshot: its size, the index epoch it
// captured, and how many trajectories that index held. The trajectory
// count is captured from the same pinned publication as the epoch, which
// is what lets a write-ahead log discard exactly the records the snapshot
// covers (wal.TruncateCovered correlates on trajectory totals).
type SnapshotStats struct {
	Bytes        int64
	Epoch        uint64
	Trajectories int
	// Path is the file the snapshot was written to (empty for Snapshot,
	// which writes to a caller-provided Writer).
	Path string
}

// SnapshotName returns the canonical file name for a snapshot of the given
// epoch: zero-padded hex, so lexicographic order is epoch order.
func SnapshotName(epoch uint64) string {
	return fmt.Sprintf("snapshot-%016x.snt", epoch)
}

// FindLatestSnapshot locates the newest snapshot file in dir: the
// highest-epoch SnapshotName file, falling back to the legacy
// SnapshotFileName when no epoch-named snapshot exists. Empty string (and
// nil error) means the directory holds no snapshot at all.
func FindLatestSnapshot(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best := ""
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !snapshotNamed(name) {
			continue
		}
		if best == "" || name > best {
			best = name
		}
	}
	if best != "" {
		return filepath.Join(dir, best), nil
	}
	legacy := filepath.Join(dir, SnapshotFileName)
	if _, err := os.Stat(legacy); err == nil {
		return legacy, nil
	}
	return "", nil
}

// snapshotNamed reports whether name matches the epoch-named snapshot
// pattern snapshot-%016x.snt.
func snapshotNamed(name string) bool {
	const pre, suf = "snapshot-", ".snt"
	if len(name) != len(pre)+16+len(suf) ||
		name[:len(pre)] != pre || name[len(name)-len(suf):] != suf {
		return false
	}
	for _, c := range name[len(pre) : len(pre)+16] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// PruneSnapshots enforces the retention bound in dir: the newest keep
// epoch-named snapshots survive, older ones are deleted. protect names
// files (by full path; empty strings are ignored) that are never deleted
// regardless of age — the snapshot a running replay or serving engine was
// loaded from, which must stay on disk until a newer snapshot durably
// covers it, and the file a mapped engine is serving over
// (Engine.MappedSnapshotPath): deleting a mapped file works on unix —
// the inode survives the unlink — but silently breaks the next restart's
// re-open. The legacy SnapshotFileName is treated as older than every
// epoch-named snapshot (it is only deleted once an epoch-named one exists,
// and never while protected). Returns the deleted file names. keep < 1 is
// treated as 1.
func PruneSnapshots(dir string, keep int, protect ...string) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var named []string
	legacy := false
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if snapshotNamed(ent.Name()) {
			named = append(named, ent.Name())
		} else if ent.Name() == SnapshotFileName {
			legacy = true
		}
	}
	sort.Strings(named) // zero-padded hex: lexicographic == epoch order
	var doomed []string
	if len(named) > keep {
		doomed = named[:len(named)-keep]
	}
	if legacy && len(named) > 0 {
		doomed = append(doomed, SnapshotFileName)
	}
	protected := func(path string) bool {
		for _, p := range protect {
			if p != "" && path == p {
				return true
			}
		}
		return false
	}
	var deleted []string
	for _, name := range doomed {
		path := filepath.Join(dir, name)
		if protected(path) {
			continue
		}
		if err := os.Remove(path); err != nil {
			return deleted, fmt.Errorf("pathhist: pruning snapshot %s: %w", name, err)
		}
		deleted = append(deleted, name)
	}
	return deleted, nil
}

// Snapshot writes the engine's currently published index snapshot and epoch
// to w. The captured pair is one consistent publication: concurrent
// queries, Extends and Compacts are unaffected (the index is immutable; a
// snapshot simply pins one epoch), so Snapshot is safe to call at any time
// on a serving engine.
func (e *Engine) Snapshot(w io.Writer) (SnapshotStats, error) {
	ix, epoch := e.qe.Snapshot()
	n, err := ix.WriteSnapshot(w, epoch)
	return SnapshotStats{Bytes: n, Epoch: epoch, Trajectories: ix.Stats().Trajs}, err
}

// SnapshotFileIn writes an epoch-named snapshot (SnapshotName) into dir
// with SnapshotFile's atomicity, returning stats whose Path names the
// written file. The name is derived from the epoch actually captured (one
// pinned publication — a concurrent Extend cannot make name and content
// disagree). Distinct epochs get distinct files, which is what makes
// retention (PruneSnapshots) and never-delete-the-loaded-file protection
// possible; writing the same epoch twice harmlessly replaces the file with
// identical bytes.
func (e *Engine) SnapshotFileIn(dir string) (SnapshotStats, error) {
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return SnapshotStats{}, fmt.Errorf("pathhist: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (SnapshotStats, error) {
		//lint:ignore syncerr fail closure: the primary snapshot error wins and the temp file is removed
		tmp.Close()
		os.Remove(tmpName)
		return SnapshotStats{}, err
	}
	if err := failpoint.Inject(FailpointSnapshotWrite); err != nil {
		return fail(fmt.Errorf("pathhist: writing snapshot: %w", err))
	}
	st, err := e.Snapshot(tmp)
	if err != nil {
		return fail(fmt.Errorf("pathhist: writing snapshot: %w", err))
	}
	if err := failpoint.Inject(FailpointSnapshotSync); err != nil {
		return fail(fmt.Errorf("pathhist: syncing snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pathhist: syncing snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("pathhist: closing snapshot: %w", err))
	}
	path := filepath.Join(dir, SnapshotName(st.Epoch))
	if err := failpoint.Inject(FailpointSnapshotRename); err != nil {
		os.Remove(tmpName)
		return SnapshotStats{}, fmt.Errorf("pathhist: publishing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return SnapshotStats{}, fmt.Errorf("pathhist: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		// The file is on disk but its directory entry may not survive a
		// crash; report that rather than claim a durable publication.
		return SnapshotStats{}, fmt.Errorf("pathhist: persisting snapshot publication: %w", err)
	}
	st.Path = path
	return st, nil
}

// SnapshotFile writes the snapshot to path atomically: the bytes go to a
// temporary file in the same directory, which is fsynced and then renamed
// over the target (with a directory fsync), so a crash mid-write can never
// leave a half-written file where a later load would look for a snapshot —
// either the old file survives or the new one is complete.
func (e *Engine) SnapshotFile(path string) (SnapshotStats, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return SnapshotStats{}, fmt.Errorf("pathhist: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the target is only
	// ever touched by the final rename.
	fail := func(err error) (SnapshotStats, error) {
		//lint:ignore syncerr fail closure: the primary snapshot error wins and the temp file is removed
		tmp.Close()
		os.Remove(tmpName)
		return SnapshotStats{}, err
	}
	if err := failpoint.Inject(FailpointSnapshotWrite); err != nil {
		return fail(fmt.Errorf("pathhist: writing snapshot: %w", err))
	}
	st, err := e.Snapshot(tmp)
	if err != nil {
		return fail(fmt.Errorf("pathhist: writing snapshot: %w", err))
	}
	if err := failpoint.Inject(FailpointSnapshotSync); err != nil {
		return fail(fmt.Errorf("pathhist: syncing snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pathhist: syncing snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("pathhist: closing snapshot: %w", err))
	}
	if err := failpoint.Inject(FailpointSnapshotRename); err != nil {
		os.Remove(tmpName)
		return SnapshotStats{}, fmt.Errorf("pathhist: publishing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return SnapshotStats{}, fmt.Errorf("pathhist: publishing snapshot: %w", err)
	}
	// Persist the rename itself: fsync the directory so the publication
	// survives a crash right after SnapshotFile returns.
	if err := syncDir(dir); err != nil {
		return SnapshotStats{}, fmt.Errorf("pathhist: persisting snapshot publication: %w", err)
	}
	return st, nil
}

// LoadSnapshot restores an Engine from a snapshot written by Snapshot,
// against the same road network it was written with. The restored engine
// republishes the snapshot's epoch, so epoch-stamped observability (and any
// client correlating epochs across the restart) stays consistent; query
// results are bit-identical to the engine that wrote the snapshot. The
// Options play the same role as in NewEngine — partitioning, estimator,
// caches, compaction policy are serving-time choices, not part of the
// persisted index — and the cardinality estimator is rebuilt against the
// restored index. Loading fails closed on any corruption (see
// snt.ReadSnapshot); nothing is partially served.
func LoadSnapshot(g *Graph, r io.Reader, opts Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("pathhist: nil graph")
	}
	ix, epoch, err := snt.ReadSnapshot(g, r)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), epoch)}, nil
}

// LoadSnapshotFile restores an Engine from a snapshot file: one stat-sized
// read, then sections decode straight out of that buffer.
func LoadSnapshotFile(g *Graph, path string, opts Options) (*Engine, error) {
	if err := failpoint.Inject(FailpointSnapshotLoad); err != nil {
		return nil, fmt.Errorf("pathhist: reading snapshot %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("pathhist: nil graph")
	}
	ix, epoch, err := snt.ReadSnapshotBytes(g, data)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), epoch)}, nil
}

// LoadSnapshotFileMapped restores an Engine over a read-only mapping of the
// snapshot file instead of a copy: the index's columns point straight into
// the mapping (DESIGN.md §15), so restore cost is CRC verification plus
// semantic validation — no per-column allocation — and stays near-flat as
// the index grows. Integrity is exactly LoadSnapshotFile's: every section
// CRC and the column cross-checks run before the engine exists, never
// lazily at fault time. The engine behaves identically afterwards — query,
// Extend (mapped columns are detached to the heap before any append),
// Compact, Snapshot all work — and holds the mapping for its lifetime; see
// Engine.MappedSnapshotPath for the retention contract. On non-unix
// platforms the mapping degrades to a heap copy of the file.
func LoadSnapshotFileMapped(g *Graph, path string, opts Options) (*Engine, error) {
	if err := failpoint.Inject(FailpointSnapshotLoad); err != nil {
		return nil, fmt.Errorf("pathhist: reading snapshot %s: %w", path, err)
	}
	if g == nil {
		return nil, fmt.Errorf("pathhist: nil graph")
	}
	m, err := snapio.MapFile(path)
	if err != nil {
		return nil, err
	}
	ix, epoch, err := snt.ReadSnapshotMapped(g, m.Data())
	if err != nil {
		if cerr := m.Close(); cerr != nil {
			return nil, fmt.Errorf("pathhist: unmapping %s: %v (after: %w)", path, cerr, err)
		}
		return nil, err
	}
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), epoch), mapping: m}, nil
}
