package pathhist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathhist/internal/workload"
)

// sameResults compares the caller-visible parts of two results.
func sameResults(a, b *Result) error {
	if a.MeanSeconds != b.MeanSeconds {
		return fmt.Errorf("mean %v vs %v", a.MeanSeconds, b.MeanSeconds)
	}
	if len(a.Subs) != len(b.Subs) {
		return fmt.Errorf("subs %d vs %d", len(a.Subs), len(b.Subs))
	}
	for i := range a.Subs {
		sa, sb := &a.Subs[i], &b.Subs[i]
		if sa.Samples != sb.Samples || sa.MeanTT != sb.MeanTT || sa.Fallback != sb.Fallback || len(sa.Path) != len(sb.Path) {
			return fmt.Errorf("sub %d: %+v vs %+v", i, sa, sb)
		}
	}
	if a.Histogram.Total() != b.Histogram.Total() ||
		a.Histogram.Min() != b.Histogram.Min() ||
		a.Histogram.Max() != b.Histogram.Max() ||
		math.Abs(a.Histogram.Mean()-b.Histogram.Mean()) > 1e-9 {
		return fmt.Errorf("histogram mismatch")
	}
	return nil
}

// TestConcurrentEngineMatchesSequential hammers one shared Engine from many
// goroutines with mixed periodic and fixed queries (run under -race in CI),
// asserting every answer equals the sequential no-cache reference. This is
// the library-level statement of the concurrency model: the index is
// immutable after NewEngine, so a single Engine serves arbitrary concurrent
// traffic.
func TestConcurrentEngineMatchesSequential(t *testing.T) {
	e := env(t)
	seq, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := e.Queries
	if len(qs) > 24 {
		qs = qs[:24]
	}
	mkQuery := func(i int, q workload.Query) Query {
		out := Query{Path: q.Path, Beta: 20, Exclude: true, ExcludeTraj: q.Traj}
		switch i % 3 {
		case 0:
			out.Around = q.T0
		case 1:
			out.Around = q.T0
			out.FilterUser = true
			out.User = q.User
		default:
			out.From, out.Until = 0, q.T0
		}
		return out
	}
	want := make([]*Result, len(qs))
	for i, q := range qs {
		r, err := seq.Query(mkQuery(i, q))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 8
	const rounds = 2
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range qs {
					j := (i + g) % len(qs)
					got, err := shared.Query(mkQuery(j, qs[j]))
					if err != nil {
						errs <- err
						return
					}
					if err := sameResults(want[j], got); err != nil {
						errs <- fmt.Errorf("goroutine %d query %d: %w", g, j, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := shared.CacheStats(); st.Hits == 0 {
		t.Fatalf("shared engine recorded no cache hits: %+v", st)
	}
}

// TestCacheDisabledEngine checks the opt-out leaves counters at zero.
func TestCacheDisabledEngine(t *testing.T) {
	e := env(t)
	eng, err := NewEngine(e.DS.G, e.DS.Store, Options{DisableCache: true, Tree: CSSTree})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Queries[0]
	for i := 0; i < 3; i++ {
		res, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20, Exclude: true, ExcludeTraj: q.Traj})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits != 0 || res.CacheMisses != 0 {
			t.Fatalf("cache counters nonzero with cache disabled: %+v", res)
		}
	}
	if st := eng.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("engine cache stats nonzero: %+v", st)
	}
}

// TestQueryDeadlineBounded is the bounded-latency acceptance check: a
// query run under a deadline always comes back — answered, or with
// context.DeadlineExceeded — and a timed-out query returns well inside 2×
// its deadline (the cancellation stride bounds how long a scan can overrun;
// a generous scheduling grace absorbs CI jitter for sub-millisecond
// deadlines). Deadlines are swept from already-expired to comfortable so
// both outcomes occur on every run.
func TestQueryDeadlineBounded(t *testing.T) {
	e := env(t)
	eng, err := NewEngine(e.DS.G, e.DS.Store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const grace = 100 * time.Millisecond // scheduler + stride slack
	deadlines := []time.Duration{0, 20 * time.Microsecond, 500 * time.Microsecond, 50 * time.Millisecond}
	var timedOut, completed int
	for i, q := range e.Queries {
		d := deadlines[i%len(deadlines)]
		ctx, cancel := context.WithTimeout(context.Background(), d)
		start := time.Now()
		res, err := eng.QueryCtx(ctx, Query{Path: q.Path, Around: q.T0, Beta: 20})
		lat := time.Since(start)
		cancel()
		switch {
		case err == nil:
			completed++
			if res == nil {
				t.Fatalf("query %d: nil result without error", i)
			}
		case errors.Is(err, context.DeadlineExceeded):
			timedOut++
			if res != nil {
				t.Fatalf("query %d: partial result alongside a deadline error", i)
			}
			bound := 2*d + grace
			if lat > bound {
				t.Fatalf("query %d: deadline %v but returned after %v (bound %v)", i, d, lat, bound)
			}
		default:
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	if timedOut == 0 {
		t.Fatal("no query timed out: the sweep never exercised the deadline path")
	}
	if completed == 0 {
		t.Fatal("no query completed: the sweep never exercised the success path")
	}
}

// TestCancellationLeaksNothing hammers a shared engine with queries whose
// contexts are canceled at random moments, racing the scan (run under
// -race in CI). Afterwards the process must be clean: the goroutine count
// settles back (speculative workers exited), and a fresh uncanceled run of
// every query still matches the sequential reference — a canceled query
// freed its pooled scratch without poisoning it and never planted a
// partial answer in a cache.
func TestCancellationLeaksNothing(t *testing.T) {
	e := env(t)
	seq, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := e.Queries
	if len(qs) > 16 {
		qs = qs[:16]
	}
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for j := 0; j < 40; j++ {
				q := qs[rng.Intn(len(qs))]
				ctx, cancel := context.WithCancel(context.Background())
				go func(after time.Duration) {
					time.Sleep(after)
					cancel()
				}(time.Duration(rng.Intn(200)) * time.Microsecond)
				_, err := shared.QueryCtx(ctx, Query{Path: q.Path, Around: q.T0, Beta: 20})
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("goroutine %d query %d: %v", g, j, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Goroutines must settle back to the pre-hammer level (the canceler
	// goroutines and any speculative workers exit on their own).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Fatalf("goroutines leaked under cancellation: %d before, %d after", before, now)
	}
	// The pool survived: uncanceled queries still answer exactly.
	for i, q := range qs {
		want, err := seq.Query(Query{Path: q.Path, Around: q.T0, Beta: 20})
		if err != nil {
			t.Fatal(err)
		}
		got, err := shared.Query(Query{Path: q.Path, Around: q.T0, Beta: 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := sameResults(want, got); err != nil {
			t.Fatalf("query %d after cancellation storm: %v", i, err)
		}
	}
}
