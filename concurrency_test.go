package pathhist

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"pathhist/internal/workload"
)

// sameResults compares the caller-visible parts of two results.
func sameResults(a, b *Result) error {
	if a.MeanSeconds != b.MeanSeconds {
		return fmt.Errorf("mean %v vs %v", a.MeanSeconds, b.MeanSeconds)
	}
	if len(a.Subs) != len(b.Subs) {
		return fmt.Errorf("subs %d vs %d", len(a.Subs), len(b.Subs))
	}
	for i := range a.Subs {
		sa, sb := &a.Subs[i], &b.Subs[i]
		if sa.Samples != sb.Samples || sa.MeanTT != sb.MeanTT || sa.Fallback != sb.Fallback || len(sa.Path) != len(sb.Path) {
			return fmt.Errorf("sub %d: %+v vs %+v", i, sa, sb)
		}
	}
	if a.Histogram.Total() != b.Histogram.Total() ||
		a.Histogram.Min() != b.Histogram.Min() ||
		a.Histogram.Max() != b.Histogram.Max() ||
		math.Abs(a.Histogram.Mean()-b.Histogram.Mean()) > 1e-9 {
		return fmt.Errorf("histogram mismatch")
	}
	return nil
}

// TestConcurrentEngineMatchesSequential hammers one shared Engine from many
// goroutines with mixed periodic and fixed queries (run under -race in CI),
// asserting every answer equals the sequential no-cache reference. This is
// the library-level statement of the concurrency model: the index is
// immutable after NewEngine, so a single Engine serves arbitrary concurrent
// traffic.
func TestConcurrentEngineMatchesSequential(t *testing.T) {
	e := env(t)
	seq, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewEngine(e.DS.G, e.DS.Store, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := e.Queries
	if len(qs) > 24 {
		qs = qs[:24]
	}
	mkQuery := func(i int, q workload.Query) Query {
		out := Query{Path: q.Path, Beta: 20, Exclude: true, ExcludeTraj: q.Traj}
		switch i % 3 {
		case 0:
			out.Around = q.T0
		case 1:
			out.Around = q.T0
			out.FilterUser = true
			out.User = q.User
		default:
			out.From, out.Until = 0, q.T0
		}
		return out
	}
	want := make([]*Result, len(qs))
	for i, q := range qs {
		r, err := seq.Query(mkQuery(i, q))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 8
	const rounds = 2
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range qs {
					j := (i + g) % len(qs)
					got, err := shared.Query(mkQuery(j, qs[j]))
					if err != nil {
						errs <- err
						return
					}
					if err := sameResults(want[j], got); err != nil {
						errs <- fmt.Errorf("goroutine %d query %d: %w", g, j, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := shared.CacheStats(); st.Hits == 0 {
		t.Fatalf("shared engine recorded no cache hits: %+v", st)
	}
}

// TestCacheDisabledEngine checks the opt-out leaves counters at zero.
func TestCacheDisabledEngine(t *testing.T) {
	e := env(t)
	eng, err := NewEngine(e.DS.G, e.DS.Store, Options{DisableCache: true, Tree: CSSTree})
	if err != nil {
		t.Fatal(err)
	}
	q := e.Queries[0]
	for i := 0; i < 3; i++ {
		res, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20, Exclude: true, ExcludeTraj: q.Traj})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits != 0 || res.CacheMisses != 0 {
			t.Fatalf("cache counters nonzero with cache disabled: %+v", res)
		}
	}
	if st := eng.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("engine cache stats nonzero: %+v", st)
	}
}
