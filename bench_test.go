// Benchmarks regenerating the paper's tables and figures at test scale.
// Each BenchmarkFigN* corresponds to a panel of the paper's evaluation
// (Section 6); cmd/ttbench runs the same experiments at full scale and
// prints the complete tables. Accuracy metrics are attached to the timing
// output via b.ReportMetric, so a single -bench run shows both dimensions.
package pathhist

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pathhist/internal/card"
	"pathhist/internal/experiments"
	"pathhist/internal/gps"
	"pathhist/internal/hist"
	"pathhist/internal/mapmatch"
	"pathhist/internal/network"
	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/suffix"
	"pathhist/internal/temporal"
	"pathhist/internal/wal"
	"pathhist/internal/workload"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// env lazily builds the shared benchmark dataset (small scale).
func env(b testing.TB) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := workload.SmallConfig()
		benchEnv = experiments.NewEnv(cfg, 0.05, 5)
	})
	if len(benchEnv.Queries) == 0 {
		b.Fatal("no queries in benchmark env")
	}
	return benchEnv
}

// BenchmarkTable1EstimateTT measures the speed-limit fallback (Table 1).
func BenchmarkTable1EstimateTT(b *testing.B) {
	g, ids := network.PaperExample()
	p := network.Path{ids["A"], ids["B"], ids["E"]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.EstimatePathTT(p)
	}
}

// benchGridCell times one engine configuration over the query set and
// reports the paper's accuracy metrics alongside. The sub-result cache is
// disabled so the cell measures the paper's scan cost, not cache hits; the
// cached serving path is measured by BenchmarkTripQueryParallel.
func benchGridCell(b *testing.B, qt experiments.QueryType, pt query.Partitioner, sp query.Splitter, beta int) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{Partitioner: pt, Splitter: sp, BucketWidth: 10,
		DisableCache: true, DisableFullResultCache: true})
	qs := e.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		_ = eng.TripQuery(experiments.SPQFor(q, qt, beta))
	}
	b.StopTimer()
	p := e.RunCell(ix, qt, pt, sp, beta, nil)
	b.ReportMetric(p.SMAPE, "sMAPE%")
	b.ReportMetric(p.AvgSubLen, "subLen")
	b.ReportMetric(p.LogL, "logL")
}

// Figures 5-9, Temporal Filters panel (a): best method πZ/σR at β=20 vs the
// π1 baseline and the σL variant.
func BenchmarkFig5aTemporalPiZ(b *testing.B) {
	benchGridCell(b, experiments.TemporalFilters, query.Partitioner{Kind: query.ZoneKind}, query.SigmaR, 20)
}

func BenchmarkFig5aTemporalPi1Baseline(b *testing.B) {
	benchGridCell(b, experiments.TemporalFilters, query.Partitioner{Kind: query.Regular, P: 1}, query.SigmaR, 20)
}

func BenchmarkFig5aTemporalPiZSigmaL(b *testing.B) {
	benchGridCell(b, experiments.TemporalFilters, query.Partitioner{Kind: query.ZoneKind}, query.SigmaL, 20)
}

// Figures 5-9, User Filters panel (b): πMDM applies user predicates
// selectively; πC applies them everywhere.
func BenchmarkFig5bUserPiMDM(b *testing.B) {
	benchGridCell(b, experiments.UserFilters, query.Partitioner{Kind: query.MDM}, query.SigmaR, 20)
}

func BenchmarkFig5bUserPiC(b *testing.B) {
	benchGridCell(b, experiments.UserFilters, query.Partitioner{Kind: query.Category}, query.SigmaR, 20)
}

// Figures 5-9, SPQ Only panel (c).
func BenchmarkFig5cSPQOnlyPiN(b *testing.B) {
	benchGridCell(b, experiments.SPQOnly, query.Partitioner{Kind: query.None}, query.SigmaR, 20)
}

// BenchmarkFig9QueryLatency sweeps β for the headline latency figure.
func BenchmarkFig9QueryLatency(b *testing.B) {
	for _, beta := range []int{10, 30, 50} {
		b.Run(map[int]string{10: "beta10", 30: "beta30", 50: "beta50"}[beta], func(b *testing.B) {
			benchGridCell(b, experiments.TemporalFilters, query.Partitioner{Kind: query.ZoneKind}, query.SigmaR, beta)
		})
	}
}

// BenchmarkFig10IndexBuild measures index construction (Figure 10c).
func BenchmarkFig10IndexBuild(b *testing.B) {
	e := env(b)
	for _, cfg := range []struct {
		name string
		tree temporal.TreeKind
		days int
	}{
		{"CSS_FULL", temporal.CSS, 0},
		{"CSS_30d", temporal.CSS, 30},
		{"BT_FULL", temporal.BPlus, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := snt.Build(e.DS.G, e.DS.Store, snt.Options{Tree: cfg.tree, PartitionDays: cfg.days})
				if i == b.N-1 {
					m := ix.Memory()
					b.ReportMetric(float64(m.Total())/1024/1024, "MiB")
					b.ReportMetric(float64(ix.NumPartitions()), "partitions")
				}
			}
		})
	}
}

// BenchmarkFig10bTodHistograms measures ToD histogram build cost and size
// (Figure 10b).
func BenchmarkFig10bTodHistograms(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		ix := snt.Build(e.DS.G, e.DS.Store, snt.Options{TodBucketSeconds: 60})
		if i == b.N-1 {
			b.ReportMetric(float64(ix.Memory().TodBytes)/1024/1024, "MiB")
		}
	}
}

// BenchmarkFig11aEstimator measures cardinality estimation itself and
// reports the q-error (Figure 11a).
func BenchmarkFig11aEstimator(b *testing.B) {
	e := env(b)
	for _, mode := range []card.Mode{card.ISA, card.CSSFast, card.CSSAcc} {
		b.Run(mode.String(), func(b *testing.B) {
			ix := e.Index(temporal.CSS, 0, 900)
			est := card.New(ix, mode)
			pt := query.Partitioner{Kind: query.ZoneKind}
			var subs []query.SPQ
			for _, q := range e.Queries {
				subs = append(subs, pt.Partition(e.DS.G, experiments.SPQFor(q, experiments.TemporalFilters, 20))...)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := subs[i%len(subs)]
				_, _ = est.Estimate(s.Path, s.Interval, s.Filter)
			}
		})
	}
}

// BenchmarkFig11bEstimatorRuntime measures end-to-end query time with and
// without the estimator (Figure 11b).
func BenchmarkFig11bEstimatorRuntime(b *testing.B) {
	e := env(b)
	for _, cfg := range []struct {
		name string
		mode card.Mode
		tod  int
	}{
		{"CSS_off", card.Off, 0},
		{"CSS_Fast", card.CSSFast, 0},
		{"CSS_Acc", card.CSSAcc, 900},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			ix := e.Index(temporal.CSS, 0, cfg.tod)
			var est *card.Estimator
			if cfg.mode != card.Off {
				est = card.New(ix, cfg.mode)
			}
			eng := query.NewEngine(ix, query.Config{
				Partitioner:            query.Partitioner{Kind: query.ZoneKind},
				BucketWidth:            10,
				Estimator:              est,
				DisableCache:           true,
				DisableFullResultCache: true,
			})
			qs := e.Queries
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
			}
		})
	}
}

// BenchmarkAblationScanOrder compares newest-first and oldest-first
// temporal scans (DESIGN.md §4, decision 4).
func BenchmarkAblationScanOrder(b *testing.B) {
	e := env(b)
	for _, oldest := range []bool{false, true} {
		name := "newestFirst"
		if oldest {
			name = "oldestFirst"
		}
		b.Run(name, func(b *testing.B) {
			ix := snt.Build(e.DS.G, e.DS.Store, snt.Options{OldestFirst: oldest})
			// Both caches off: the cell compares raw scan orders.
			eng := query.NewEngine(ix, query.Config{
				Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
				DisableCache: true, DisableFullResultCache: true,
			})
			qs := e.Queries
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				_ = eng.TripQuery(experiments.SPQFor(q, experiments.SPQOnly, 20))
			}
			b.StopTimer()
			p := e.RunCell(ix, experiments.SPQOnly, query.Partitioner{Kind: query.ZoneKind}, query.SigmaR, 20, nil)
			b.ReportMetric(p.SMAPE, "sMAPE%")
		})
	}
}

// BenchmarkThroughputParallel measures multi-client query throughput (the
// parallelization opportunity the paper's outlook names) with the cache
// disabled: every query pays the full scan cost, concurrency alone is
// measured.
func BenchmarkThroughputParallel(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
		DisableCache: true, DisableFullResultCache: true,
	})
	qs := e.Queries
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&next, 1)
			q := qs[int(i)%len(qs)]
			_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
		}
	})
}

// BenchmarkTripQuerySequential is the perf-trajectory baseline: the purely
// sequential Procedure 6 with no sub-result cache — the processing model of
// the seed implementation.
func BenchmarkTripQuerySequential(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
		Workers: 1, DisableCache: true, DisableFullResultCache: true,
	})
	qs := e.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
	}
}

// BenchmarkTripQueryParallel is the production serving path: one shared
// engine with speculative parallel sub-query execution and both caches,
// driven by concurrent clients via b.RunParallel. Steady state is
// dominated by full-result cache hits, which is precisely the serving
// scenario the caches exist for; compare against
// BenchmarkTripQuerySequential for the engine-level speedup.
func BenchmarkTripQueryParallel(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
	})
	qs := e.Queries
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&next, 1)
			q := qs[int(i)%len(qs)]
			_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
		}
	})
}

// BenchmarkTripQueryFullCacheHit is the warm serving fast path: repeated
// identical trips answered whole from the full-result cache (no
// partitioning, scans or convolution).
func BenchmarkTripQueryFullCacheHit(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
	})
	qs := e.Queries
	for _, q := range qs {
		_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		res := eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
		if !res.FullCacheHit {
			b.Fatal("warm query missed the full-result cache")
		}
	}
}

// copyStore deep-copies a trajectory store.
func copyStore(src *Store) *Store {
	out := NewStore()
	for i := 0; i < src.Len(); i++ {
		tr := src.Get(TrajID(i))
		out.Add(tr.User, append([]Entry(nil), tr.Seq...))
	}
	return out
}

// shiftStore returns a copy of the store with every timestamp moved by the
// given offset — the trick that turns one template batch into an unbounded
// stream of strictly-newer batches for the extend benchmarks.
func shiftStore(src *Store, by int64) *Store {
	out := NewStore()
	for i := 0; i < src.Len(); i++ {
		tr := src.Get(TrajID(i))
		seq := make([]Entry, len(tr.Seq))
		for j, en := range tr.Seq {
			en.T += by
			seq[j] = en
		}
		out.Add(tr.User, seq)
	}
	return out
}

// extendBenchEnv builds a live-ingestion scenario: an engine over the first
// quiescent split of the benchmark dataset, a template batch from the rest,
// and the shift span that keeps successive shifted batches strictly newer
// than everything before them.
func extendBenchEnv(b *testing.B, opts Options) (*Engine, *Store, int64) {
	b.Helper()
	e := env(b)
	batches := quiescentBatches(copyStore(e.DS.Store), 2)
	if len(batches) < 2 {
		b.Skip("dataset has no quiescent split point")
	}
	eng, err := NewEngine(e.DS.G, batches[0], opts)
	if err != nil {
		b.Fatal(err)
	}
	_, tmax := e.DS.Store.TimeRange()
	tmplMin := batches[1].Get(0).StartTime()
	span := tmax - tmplMin + 86400
	return eng, batches[1], span
}

// BenchmarkEngineExtend measures the cost of ingesting one batch on an
// otherwise idle engine: FM-index construction for the new partition plus
// the copy-on-write column appends and the epoch publication.
func BenchmarkEngineExtend(b *testing.B) {
	eng, tmpl, span := extendBenchEnv(b, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Extend(shiftStore(tmpl, int64(i+1)*span)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tmpl.Len()), "trajs/batch")
	b.ReportMetric(float64(tmpl.NumTraversals()), "records/batch")
}

// BenchmarkExtendWhileServing is the live-ingestion serving scenario: b.N
// batch ingests on an engine that concurrent query goroutines keep under
// constant load (periodic queries whose cache keys persist across epochs,
// so every extend also exercises the lazy invalidation path). The reported
// time is ingest latency under load; the queries-served metric shows the
// engine kept answering throughout.
func BenchmarkExtendWhileServing(b *testing.B) {
	eng, tmpl, span := extendBenchEnv(b, Options{})
	e := env(b)
	qs := e.Queries
	stop := make(chan struct{})
	var served atomic.Int64
	var qerr atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				if _, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
					qerr.Store(err)
					return
				}
				served.Add(1)
			}
		}(g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Extend(shiftStore(tmpl, int64(i+1)*span)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if err, ok := qerr.Load().(error); ok && err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(served.Load())/float64(b.N), "queries/extend")
	b.ReportMetric(float64(tmpl.Len()), "trajs/batch")
}

// BenchmarkManyPartitions is the ingest-degradation headline (PR 4): cold
// TripQuery latency over the same data in three index layouts — fragmented
// by 32 live Extend batches (one backward search per partition per
// sub-query), the same index after Compact, and a single-partition
// from-scratch rebuild. The acceptance bar is compacted within ~1.2x of
// rebuilt, with fragmented several times worse.
func BenchmarkManyPartitions(b *testing.B) {
	e := env(b)
	frag := e.FragmentedIndex(32)
	compacted, _, err := frag.Compact(snt.CompactionPolicy{TriggerPartitions: -1})
	if err != nil {
		b.Fatal(err)
	}
	rebuilt := e.Index(temporal.CSS, 0, 0)
	for _, cfg := range []struct {
		name string
		ix   *snt.Index
	}{
		{"fragmented32", frag},
		{"compacted", compacted},
		{"rebuilt", rebuilt},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := query.NewEngine(cfg.ix, query.Config{
				Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
				DisableCache: true, DisableFullResultCache: true,
			})
			qs := e.Queries
			b.ReportMetric(float64(cfg.ix.NumPartitions()), "partitions")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				_ = eng.TripQuery(experiments.SPQFor(q, experiments.TemporalFilters, 20))
			}
		})
	}
}

// BenchmarkCompact measures the off-path merge itself: compacting the
// 33-partition fragmented index into one (trajectory-string reconstruction
// from the frozen columns, suffix arrays, FM-indexes, column rewrite).
func BenchmarkCompact(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		frag := e.FragmentedIndex(32)
		b.StartTimer()
		compacted, st, err := frag.Compact(snt.CompactionPolicy{TriggerPartitions: -1})
		if err != nil {
			b.Fatal(err)
		}
		if compacted.NumPartitions() != 1 {
			b.Fatalf("partitions = %d", compacted.NumPartitions())
		}
		if i == b.N-1 {
			b.ReportMetric(float64(st.RecordsRebuilt), "records")
			b.ReportMetric(float64(st.PartitionsBefore), "partitionsBefore")
		}
	}
}

// benchSustained runs the durable-ingest pipeline (WAL append + fsync →
// Extend, under concurrent query load) once per iteration and reports the
// extend latency distribution of the last run.
func benchSustained(b *testing.B, background bool) {
	e := env(b)
	b.ResetTimer()
	var row experiments.SustainedRow
	for i := 0; i < b.N; i++ {
		mode := "in-lock"
		if background {
			mode = "background"
		}
		row = e.RunSustainedMode(mode, background, 24)
	}
	b.StopTimer()
	if row.Batches == 0 {
		b.Skip("dataset has no quiescent split points")
	}
	b.ReportMetric(row.ExtendP50Ms, "p50-ms")
	b.ReportMetric(row.ExtendP99Ms, "p99-ms")
	b.ReportMetric(row.ExtendMaxMs, "max-ms")
	b.ReportMetric(row.FsyncMsPerBatch, "fsync-ms/batch")
	b.ReportMetric(row.QueriesPerSec, "queries/s")
}

// BenchmarkSustainedIngestInLock is the PR 6 headline pair: durable
// sustained ingestion with merges inside the triggering Extend — the p99
// extend latency is the merge cost every few batches.
func BenchmarkSustainedIngestInLock(b *testing.B) { benchSustained(b, false) }

// BenchmarkSustainedIngestBackground is the same stream with merges in the
// background compactor: extends pay indexing + fsync only.
func BenchmarkSustainedIngestBackground(b *testing.B) { benchSustained(b, true) }

// BenchmarkWALAppend prices the durability step alone: one acknowledged
// batch's write + fsync into the ingest write-ahead log.
func BenchmarkWALAppend(b *testing.B) {
	_, tmpl, _ := extendBenchEnv(b, Options{})
	var payload bytes.Buffer
	if _, err := tmpl.WriteTo(&payload); err != nil {
		b.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	b.SetBytes(int64(payload.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.Append(uint64(i*tmpl.Len()), tmpl.Len(), payload.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := log.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.FsyncNanos)/1e6/float64(st.Appends), "fsync-ms")
	}
}

// --- Micro-benchmarks of the substrates ---

func BenchmarkSuffixArraySAIS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	text := make([]int32, n)
	for i := range text {
		text[i] = int32(1 + rng.Intn(2000))
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = suffix.Array(text, 2002)
	}
}

func BenchmarkFMIndexBackwardSearch(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	qs := e.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.PathCount(qs[i%len(qs)].Path)
	}
}

func BenchmarkGetTravelTimes(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	qs := e.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		sub := q.Path
		if len(sub) > 4 {
			sub = sub[:4]
		}
		_, _ = ix.GetTravelTimes(sub, snt.PeriodicAround(q.T0, 900), snt.NoFilter, 20)
	}
}

// BenchmarkGetTravelTimesScratch is the zero-allocation scan path: the same
// scans as BenchmarkGetTravelTimes over one held Scratch.
func BenchmarkGetTravelTimesScratch(b *testing.B) {
	e := env(b)
	ix := e.Index(temporal.CSS, 0, 0)
	qs := e.Queries
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		sub := q.Path
		if len(sub) > 4 {
			sub = sub[:4]
		}
		_, _ = ix.GetTravelTimesWith(sc, sub, snt.PeriodicAround(q.T0, 900), snt.NoFilter, 20)
	}
}

func BenchmarkHistogramConvolve(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]int, 50)
	ys := make([]int, 50)
	for i := range xs {
		xs[i] = 300 + rng.Intn(120)
		ys[i] = 500 + rng.Intn(200)
	}
	h1 := hist.FromSamples(xs, 10)
	h2 := hist.FromSamples(ys, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h1.Convolve(h2)
	}
}

func BenchmarkMapMatchTrace(b *testing.B) {
	cfg := network.DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 6
	res := network.Generate(cfg)
	rng := rand.New(rand.NewSource(4))
	sim := gps.NewSimulator(res.Graph, rng)
	router := network.NewRouter(res.Graph)
	route := router.Route(res.CityVertices[0][10], res.CityVertices[1][10])
	d := gps.Driver{CruiseFactor: 1, CityFactor: 1}
	ground := sim.SimulateTraversal(route, 1335830400+9*3600, &d)
	fixes := sim.EmitFixes(ground, 4)
	matcher := mapmatch.NewMatcher(res.Graph)
	b.SetBytes(int64(len(fixes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matcher.Match(fixes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicAPIQuery(b *testing.B) {
	e := env(b)
	eng, err := NewEngine(e.DS.G, e.DS.Store, Options{Estimator: EstimatorCSSFast})
	if err != nil {
		b.Fatal(err)
	}
	qs := e.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20, Exclude: true, ExcludeTraj: q.Traj}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Restart persistence (PR 5) ---
//
// The headline pair: BenchmarkSnapshotBuild is what a restart costs without
// persistence (read trajectories, rebuild suffix arrays/BWTs, freeze the
// forest, rebuild the estimator); BenchmarkSnapshotLoad restores the same
// serving-ready engine from snapshot bytes. benchrecord derives the
// load_vs_build ratio from the two (acceptance bar: >= 10x).

// snapshotBenchOpts mirrors the ttserve serving configuration.
var snapshotBenchOpts = Options{Partition: ByZone, Estimator: EstimatorCSSFast}

// BenchmarkSnapshotBuild is the from-scratch path a snapshot load replaces.
func BenchmarkSnapshotBuild(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(e.DS.G, e.DS.Store, snapshotBenchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotWrite measures serialising the served index.
func BenchmarkSnapshotWrite(b *testing.B) {
	e := env(b)
	eng, err := NewEngine(e.DS.G, e.DS.Store, snapshotBenchOpts)
	if err != nil {
		b.Fatal(err)
	}
	var size int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Snapshot(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		size = st.Bytes
	}
	b.StopTimer()
	b.SetBytes(size)
	b.ReportMetric(float64(size), "snapshot_bytes")
}

// BenchmarkSnapshotLoad restores a serving-ready engine from snapshot
// bytes (the restart-with-persistence path).
func BenchmarkSnapshotLoad(b *testing.B) {
	e := env(b)
	eng, err := NewEngine(e.DS.G, e.DS.Store, snapshotBenchOpts)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := eng.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	q := e.Queries[0]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := LoadSnapshot(e.DS.G, bytes.NewReader(data), snapshotBenchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Serving-ready, not just decoded: answer one real query.
			b.StopTimer()
			if _, err := restored.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkSnapshotLoadMapped is the zero-copy restart path (PR 10): the
// snapshot file is memory-mapped read-only and frozen columns decode as
// views into the mapping instead of heap copies. benchrecord derives
// mmap_load_vs_copy_load from this and BenchmarkSnapshotLoad.
func BenchmarkSnapshotLoadMapped(b *testing.B) {
	e := env(b)
	eng, err := NewEngine(e.DS.G, e.DS.Store, snapshotBenchOpts)
	if err != nil {
		b.Fatal(err)
	}
	st, err := eng.SnapshotFileIn(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	q := e.Queries[0]
	b.SetBytes(st.Bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := LoadSnapshotFileMapped(e.DS.G, st.Path, snapshotBenchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Serving-ready, not just mapped: answer one real query.
			b.StopTimer()
			if _, err := restored.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
