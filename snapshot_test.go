package pathhist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pathhist/internal/workload"
)

// lifecycleEngine builds a public-API engine that has lived through the
// full mutation lifecycle — build, two extends, a compaction — so its
// snapshot exercises multi-partition state and the compactedFrom marker.
func lifecycleEngine(t testing.TB, opts Options) (*Graph, *Engine, []workload.Query) {
	t.Helper()
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	qs := ds.MakeQueries(0.05, 5, cfg.Seed+1)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) < 3 {
		t.Fatalf("dataset has %d quiescent cuts, need 3", len(cuts))
	}
	a, b := cuts[len(cuts)/2], cuts[len(cuts)*3/4]
	eng, err := NewEngine(ds.G, ds.Store.Slice(0, a), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Extend(ds.Store.Slice(a, b)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Extend(ds.Store.Slice(b, ds.Store.Len())); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	return ds.G, eng, qs
}

func queryOnce(t testing.TB, eng *Engine, q workload.Query) *Result {
	t.Helper()
	res, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameAnswers(t *testing.T, a, b *Engine, qs []workload.Query, label string) {
	t.Helper()
	n := len(qs)
	if n > 30 {
		n = 30
	}
	for _, q := range qs[:n] {
		ra, rb := queryOnce(t, a, q), queryOnce(t, b, q)
		if ra.MeanSeconds != rb.MeanSeconds || ra.Epoch != rb.Epoch || len(ra.Subs) != len(rb.Subs) {
			t.Fatalf("%s: engines disagree on %v: mean %v/%v epoch %d/%d",
				label, q.Path, ra.MeanSeconds, rb.MeanSeconds, ra.Epoch, rb.Epoch)
		}
		ha, hb := ra.Histogram, rb.Histogram
		if ha.Total() != hb.Total() || ha.Min() != hb.Min() || ha.Max() != hb.Max() {
			t.Fatalf("%s: histograms disagree on %v", label, q.Path)
		}
		for x := ha.Min(); x <= ha.Max(); x += ha.BucketWidth() {
			if ha.Count(x) != hb.Count(x) {
				t.Fatalf("%s: bucket %d disagrees on %v", label, x, q.Path)
			}
		}
	}
}

// TestPublicSnapshotRoundTrip: the public Snapshot/LoadSnapshot pair
// restores an engine whose answers, epoch, partition layout and memory
// model are identical to the writer's — with the estimator and ToD
// histograms (CSSAcc) in play.
func TestPublicSnapshotRoundTrip(t *testing.T) {
	opts := Options{Partition: ByZone, Estimator: EstimatorCSSAcc}
	g, eng, qs := lifecycleEngine(t, opts)

	var buf bytes.Buffer
	st, err := eng.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != int64(buf.Len()) || st.Bytes == 0 || st.Epoch != eng.Epoch() {
		t.Fatalf("Snapshot stats %+v, buffered %d, engine epoch %d", st, buf.Len(), eng.Epoch())
	}
	restored, err := LoadSnapshot(g, bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Epoch() != eng.Epoch() {
		t.Fatalf("restored epoch %d, want %d", restored.Epoch(), eng.Epoch())
	}
	if restored.Partitions() != eng.Partitions() || restored.Trajectories() != eng.Trajectories() {
		t.Fatalf("restored layout %d/%d, want %d/%d", restored.Partitions(),
			restored.Trajectories(), eng.Partitions(), eng.Trajectories())
	}
	if restored.IndexInfo() != eng.IndexInfo() {
		t.Fatalf("IndexInfo = %q, want %q", restored.IndexInfo(), eng.IndexInfo())
	}
	c1, w1, u1, f1 := eng.IndexMemory()
	c2, w2, u2, f2 := restored.IndexMemory()
	if c1 != c2 || w1 != w2 || u1 != u2 || f1 != f2 {
		t.Fatalf("IndexMemory differs: %d/%d/%d/%d vs %d/%d/%d/%d", c1, w1, u1, f1, c2, w2, u2, f2)
	}
	assertSameAnswers(t, eng, restored, qs, "restored")

	if _, err := LoadSnapshot(nil, bytes.NewReader(buf.Bytes()), opts); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestSnapshotFileAtomic: SnapshotFile publishes via temp file + rename —
// the directory never holds a partial file under the target name, temp
// files never survive, and overwriting an existing snapshot works.
func TestSnapshotFileAtomic(t *testing.T) {
	g, eng, qs := lifecycleEngine(t, Options{Partition: ByZone})
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFileName)

	st, err := eng.SnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != st.Bytes {
		t.Fatalf("snapshot file: %v, size %d want %d", err, fi.Size(), st.Bytes)
	}
	// Overwrite: a second snapshot replaces the first atomically.
	if _, err := eng.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s survived", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in snapshot dir, want 1", len(entries))
	}

	restored, err := LoadSnapshotFile(g, path, Options{Partition: ByZone})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, eng, restored, qs, "file round trip")

	// A write into a missing directory fails without touching the target.
	if _, err := eng.SnapshotFile(filepath.Join(dir, "missing", SnapshotFileName)); err == nil {
		t.Fatal("snapshot into missing directory succeeded")
	}
	// Corruption fails closed at load.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	bad := filepath.Join(dir, "corrupt.snt")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(g, bad, Options{Partition: ByZone}); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
	if _, err := LoadSnapshotFile(g, filepath.Join(dir, "nope.snt"), Options{}); err == nil {
		t.Fatal("missing snapshot loaded")
	}
}

// TestSnapshotWhileServing (-race): Snapshot pins one published epoch while
// queries and an Extend run concurrently; the captured snapshot must load
// into a consistent engine regardless of which side won the race.
func TestSnapshotWhileServing(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	qs := ds.MakeQueries(0.05, 5, cfg.Seed+1)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	cut := cuts[len(cuts)/2]
	eng, err := NewEngine(ds.G, ds.Store.Slice(0, cut), Options{Partition: ByZone})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				if _, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := eng.Extend(ds.Store.Slice(cut, ds.Store.Len())); err != nil {
			t.Error(err)
		}
	}()

	var snaps [][]byte
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if _, err := eng.Snapshot(&buf); err != nil {
			t.Error(err)
			break
		}
		snaps = append(snaps, buf.Bytes())
	}
	close(stop)
	wg.Wait()

	for i, data := range snaps {
		restored, err := LoadSnapshot(ds.G, bytes.NewReader(data), Options{Partition: ByZone})
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if restored.Epoch() > eng.Epoch() {
			t.Fatalf("snapshot %d epoch %d beyond writer's %d", i, restored.Epoch(), eng.Epoch())
		}
		q := qs[i%len(qs)]
		if _, err := restored.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
			t.Fatalf("snapshot %d: query: %v", i, err)
		}
	}
}
