package pathhist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pathhist/internal/workload"
)

// quiescentBatches splits a store into n time-disjoint stores at trajectory
// boundaries where the next trajectory starts strictly after every earlier
// one has ended — the precondition of Engine.Extend. It returns fewer
// stores when the data has too few quiescent boundaries.
func quiescentBatches(s *Store, n int) []*Store {
	s.SortByStart()
	var maxEnd int64
	var bounds []int // quiescent cut positions (exclusive prefix ends)
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(TrajID(i))
		if i > 0 && tr.StartTime() > maxEnd {
			bounds = append(bounds, i)
		}
		last := tr.Seq[len(tr.Seq)-1]
		if end := last.T + int64(last.TT); end > maxEnd {
			maxEnd = end
		}
	}
	// Pick up to n-1 cuts, evenly spread over the available boundaries.
	var cuts []int
	if want := n - 1; want > 0 && len(bounds) > 0 {
		if want > len(bounds) {
			want = len(bounds)
		}
		for k := 1; k <= want; k++ {
			cuts = append(cuts, bounds[k*len(bounds)/(want+1)])
		}
	}
	cuts = append(cuts, s.Len())
	out := make([]*Store, 0, len(cuts))
	start := 0
	for _, c := range cuts {
		if c <= start {
			continue
		}
		st := NewStore()
		for i := start; i < c; i++ {
			tr := s.Get(TrajID(i))
			st.Add(tr.User, append([]Entry(nil), tr.Seq...))
		}
		out = append(out, st)
		start = c
	}
	return out
}

// TestConcurrentQueryAndExtend hammers one shared engine with query traffic
// while the main goroutine ingests batches through Extend (run under -race
// in CI). It asserts the tentpole contract end to end: queries never fail
// or block during ingestion, observed epochs are monotone, no cached result
// crosses an epoch boundary, and immediately after each Extend the engine's
// answers equal a reference engine rebuilt from scratch over the cumulative
// data — i.e. the new batch is served with no rebuild and no stale cache
// leakage.
func TestConcurrentQueryAndExtend(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	batches := quiescentBatches(ds.Store, 4)
	if len(batches) < 2 {
		t.Fatal("dataset has no quiescent split point")
	}
	eng, err := NewEngine(ds.G, batches[0], Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Background traffic: mixed periodic and fixed queries over base-half
	// paths, with interval bounds that stay identical across epochs so the
	// cache keys collide across the boundary and the epoch stamps do the
	// isolating.
	const until = int64(1) << 40
	var paths []Path
	for i := 0; i < batches[0].Len() && len(paths) < 8; i += 5 {
		tr := batches[0].Get(TrajID(i))
		if tr.Len() >= 2 {
			paths = append(paths, tr.Path())
		}
	}
	mkBg := func(i int) Query {
		q := Query{Path: paths[i%len(paths)], Beta: 20}
		if i%2 == 0 {
			q.Periodic = true
			q.Around = int64(i%24) * 3600
		} else {
			q.Until = until
		}
		return q
	}

	done := make(chan struct{})
	errs := make(chan error, 8)
	var lastEpoch atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var seen uint64
			for i := g; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				res, err := eng.Query(mkBg(i))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if res.Histogram == nil || res.Histogram.Total() == 0 {
					errs <- fmt.Errorf("goroutine %d: empty histogram", g)
					return
				}
				if res.Epoch < seen {
					errs <- fmt.Errorf("goroutine %d: epoch went backwards %d -> %d", g, seen, res.Epoch)
					return
				}
				seen = res.Epoch
				if res.Epoch > lastEpoch.Load() {
					errs <- fmt.Errorf("goroutine %d: observed unpublished epoch %d", g, res.Epoch)
					return
				}
			}
		}(g)
	}

	// The probe query is issued only by this goroutine, so full-cache hit
	// expectations around each Extend are deterministic.
	probe := Query{Path: paths[0], Until: until, Beta: 20}
	cumulative := NewStore()
	addAll := func(src *Store) {
		for i := 0; i < src.Len(); i++ {
			tr := src.Get(TrajID(i))
			cumulative.Add(tr.User, append([]Entry(nil), tr.Seq...))
		}
	}
	addAll(batches[0])
	fail := func(format string, args ...any) {
		close(done)
		wg.Wait()
		t.Fatalf(format, args...)
	}
	for bi, batch := range batches[1:] {
		if _, err := eng.Query(probe); err != nil { // warm the probe's cache entries
			fail("batch %d: pre-extend probe: %v", bi, err)
		}
		if warm, err := eng.Query(probe); err != nil || !warm.FullCacheHit {
			fail("batch %d: probe not warmed: %v %+v", bi, err, warm)
		}
		// Publish the upcoming epoch bound before Extend so a background
		// query that races ahead onto the new snapshot never trips the
		// "unpublished epoch" check.
		lastEpoch.Store(uint64(bi + 1))
		if _, err := eng.Extend(batch); err != nil {
			fail("batch %d: Extend: %v", bi, err)
		}
		if got, want := eng.Epoch(), uint64(bi+1); got != want {
			fail("batch %d: epoch = %d, want %d", bi, got, want)
		}
		addAll(batch)
		ref, err := NewEngine(ds.G, cumulative, Options{Workers: 1, DisableCache: true, DisableFullResultCache: true})
		if err != nil {
			fail("batch %d: reference engine: %v", bi, err)
		}
		want, err := ref.Query(probe)
		if err != nil {
			fail("batch %d: reference probe: %v", bi, err)
		}
		post, err := eng.Query(probe)
		if err != nil {
			fail("batch %d: post-extend probe: %v", bi, err)
		}
		if post.FullCacheHit {
			fail("batch %d: stale full result served across the epoch boundary", bi)
		}
		if err := sameResults(want, post); err != nil {
			fail("batch %d: post-extend probe diverges from rebuilt reference: %v", bi, err)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The epoch churn must have dropped stale entries somewhere — eagerly
	// (each publication sweeps both caches) or lazily (queries racing a
	// publication on their pinned epoch). The probe's full-result entry
	// alone guarantees at least one per extend.
	if cs, fs := eng.CacheStats(), eng.FullCacheStats(); cs.Invalidations+fs.Invalidations+cs.Purges+fs.Purges == 0 {
		t.Fatalf("no cache invalidations or purges across %d extends: sub %+v full %+v",
			len(batches)-1, cs, fs)
	}
}
